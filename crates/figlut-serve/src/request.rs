//! Serving requests and seeded arrival traces.
//!
//! A [`Request`] is one user session: a prompt, a generation budget, a
//! sampling rule, and a per-session seed. A [`Trace`] is a reproducible
//! workload — requests with virtual-clock arrival times — so every
//! throughput or latency number the scheduler reports is measured under a
//! *named*, regenerable load (the "realistic, reproducible workload"
//! requirement benchmarking methodology keeps insisting on).

use figlut_model::rng::Rng;
use figlut_model::ModelConfig;

/// How a session turns next-token logits into a token.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sampling {
    /// Argmax (ties break toward the lowest token id).
    Greedy,
    /// Softmax sampling at the given temperature, driven by the session's
    /// own seeded RNG — deterministic, and independent of every other
    /// session in the batch.
    Temperature(f64),
}

/// One serving request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Stable identifier (also the tie-breaker for simultaneous arrivals).
    pub id: usize,
    /// Arrival time on the virtual clock (ticks).
    pub arrival: u64,
    /// Prompt token ids (non-empty; first token is conventionally BOS 0).
    pub prompt: Vec<usize>,
    /// Generation budget: the session completes after this many new tokens.
    pub max_new: usize,
    /// Token selection rule.
    pub sampling: Sampling,
    /// Seed of the session's sampling RNG.
    pub seed: u64,
}

/// A reproducible arrival trace: requests sorted by `(arrival, id)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The requests, in arrival order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Check the trace against a model: prompts non-empty and in-vocab,
    /// the prompt within `max_seq`, sampling temperatures positive and
    /// finite, arrivals sorted.
    ///
    /// A *zero* generation budget is allowed: the scheduler finishes such
    /// a request at its admission tick with zero tokens and a well-defined
    /// [`RequestMetrics`](crate::metrics::RequestMetrics) (prefilling it
    /// would wrongly emit a first token — the prompt's last row always
    /// samples), so degenerate budgets never panic the serving loop.
    ///
    /// A *budget* exceeding the remaining context is allowed: such a
    /// session is served until the model's position table runs out and then
    /// finishes early
    /// ([`FinishReason::ContextExhausted`](crate::engine::FinishReason)) —
    /// the standard serving behavior at the context limit. (Memory pressure
    /// never finishes a session: the scheduler preempts and restores
    /// instead.) Only prompts that cannot even be prefilled are rejected
    /// (prefill emits the first token, so a fitting prompt always produces
    /// at least one token).
    ///
    /// # Panics
    ///
    /// Panics (with the offending request id) on any violation.
    pub fn validate(&self, cfg: &ModelConfig) {
        let mut last = (0u64, 0usize);
        for r in &self.requests {
            assert!(!r.prompt.is_empty(), "request {}: empty prompt", r.id);
            if let Sampling::Temperature(t) = r.sampling {
                assert!(
                    t > 0.0 && t.is_finite(),
                    "request {}: temperature {t} must be positive and finite",
                    r.id
                );
            }
            for &t in &r.prompt {
                assert!(t < cfg.vocab, "request {}: token {t} out of vocab", r.id);
            }
            assert!(
                r.prompt.len() <= cfg.max_seq,
                "request {}: prompt of {} exceeds max_seq {}",
                r.id,
                r.prompt.len(),
                cfg.max_seq
            );
            assert!(
                (r.arrival, r.id) >= last,
                "request {}: trace not sorted by (arrival, id)",
                r.id
            );
            last = (r.arrival, r.id);
        }
    }
}

/// Knobs of [`synthetic_trace`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceParams {
    /// Number of requests.
    pub requests: usize,
    /// Mean inter-arrival gap in ticks (exponential; 0 = all at tick 0).
    pub mean_interarrival: f64,
    /// Inclusive prompt-length range (first token is always BOS 0).
    pub prompt_len: (usize, usize),
    /// Inclusive range of the per-request generation budget.
    pub new_tokens: (usize, usize),
    /// Sampling rule shared by every request.
    pub sampling: Sampling,
}

impl TraceParams {
    /// A light open-loop load: a handful of short-prompt requests.
    pub fn light(requests: usize) -> Self {
        Self {
            requests,
            mean_interarrival: 24.0,
            prompt_len: (2, 6),
            new_tokens: (3, 8),
            sampling: Sampling::Greedy,
        }
    }
}

/// Generate a seeded open-loop arrival trace for a model of shape `cfg`.
///
/// Arrival gaps are exponential with mean `mean_interarrival` (the standard
/// open-loop Poisson arrival model), prompt bodies are uniform over the
/// vocabulary, and each request gets a distinct sampling seed derived from
/// `seed` — everything is a pure function of `(cfg, params, seed)`.
///
/// # Panics
///
/// Panics if a range is inverted or the longest request cannot fit in
/// `cfg.max_seq`.
pub fn synthetic_trace(cfg: &ModelConfig, params: &TraceParams, seed: u64) -> Trace {
    let (pmin, pmax) = params.prompt_len;
    let (nmin, nmax) = params.new_tokens;
    assert!(pmin >= 1 && pmin <= pmax, "inverted prompt_len range");
    assert!(nmin >= 1 && nmin <= nmax, "inverted new_tokens range");
    assert!(
        pmax + nmax <= cfg.max_seq,
        "prompt {pmax} + new {nmax} exceeds max_seq {}",
        cfg.max_seq
    );
    let mut rng = Rng::new(seed);
    let mut clock = 0u64;
    let requests = (0..params.requests)
        .map(|id| {
            if id > 0 && params.mean_interarrival > 0.0 {
                let u = rng.uniform();
                clock += (-params.mean_interarrival * (1.0 - u).ln()).ceil() as u64;
            }
            let plen = pmin + rng.below(pmax - pmin + 1);
            let mut prompt = vec![0usize];
            for _ in 1..plen {
                prompt.push(rng.below(cfg.vocab));
            }
            Request {
                id,
                arrival: clock,
                prompt,
                max_new: nmin + rng.below(nmax - nmin + 1),
                sampling: params.sampling,
                seed: seed ^ (0x5e1e_c7ed_u64.wrapping_add(id as u64).wrapping_mul(0x9e37)),
            }
        })
        .collect();
    let trace = Trace { requests };
    trace.validate(cfg);
    trace
}

/// Exponential gap with the given mean, rounded up to whole ticks.
///
/// Always consumes exactly one RNG draw — even for a degenerate mean — so
/// scaling a scenario's arrival rate can never shift the draws that shape
/// prompts and budgets: the same `(scenario, requests, seed)` produces the
/// same request *contents* at every load, only the arrival times move.
fn exp_gap(rng: &mut Rng, mean: f64) -> u64 {
    let u = rng.uniform();
    if mean <= 0.0 {
        0
    } else {
        (-mean * (1.0 - u).ln()).ceil() as u64
    }
}

/// One draw from a bounded Pareto distribution on `[lo, hi]` with shape
/// `alpha` (inverse-CDF method), floored to an integer and clamped.
fn bounded_pareto(rng: &mut Rng, lo: usize, hi: usize, alpha: f64) -> usize {
    let u = rng.uniform();
    let (l, h) = (lo as f64, hi as f64);
    let (la, ha) = (l.powf(-alpha), h.powf(-alpha));
    let x = (la - u * (la - ha)).powf(-1.0 / alpha);
    (x.floor() as usize).clamp(lo, hi)
}

/// Per-request sampling seed: `salt` separates the scenario families so
/// two scenarios at the same top-level seed still produce distinct traces.
fn request_seed(seed: u64, salt: u64, id: usize) -> u64 {
    seed ^ salt.wrapping_add(id as u64).wrapping_mul(0x9e37)
}

/// Knobs of [`bursty_trace`]: a two-state on-off (MMPP-style) arrival
/// process — geometric bursts of closely spaced requests separated by
/// long quiet gaps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstyParams {
    /// Number of requests.
    pub requests: usize,
    /// Mean inter-arrival gap *inside* a burst, in ticks.
    pub on_interarrival: f64,
    /// Mean quiet gap *between* bursts, in ticks.
    pub off_interarrival: f64,
    /// Mean burst length in requests (geometric; must be ≥ 1).
    pub mean_burst: f64,
    /// Inclusive prompt-length range (first token is always BOS 0).
    pub prompt_len: (usize, usize),
    /// Inclusive range of the per-request generation budget.
    pub new_tokens: (usize, usize),
    /// Sampling rule shared by every request.
    pub sampling: Sampling,
}

/// Generate a seeded bursty on-off arrival trace: requests arrive in
/// geometric bursts (mean [`BurstyParams::mean_burst`]) with exponential
/// in-burst gaps, separated by exponential quiet gaps. Everything is a
/// pure function of `(cfg, params, seed)`.
///
/// # Panics
///
/// Panics if a range is inverted, `mean_burst < 1`, or the longest
/// request cannot fit in `cfg.max_seq`.
pub fn bursty_trace(cfg: &ModelConfig, params: &BurstyParams, seed: u64) -> Trace {
    let (pmin, pmax) = params.prompt_len;
    let (nmin, nmax) = params.new_tokens;
    assert!(pmin >= 1 && pmin <= pmax, "inverted prompt_len range");
    assert!(nmin >= 1 && nmin <= nmax, "inverted new_tokens range");
    assert!(params.mean_burst >= 1.0, "mean_burst must be >= 1");
    assert!(
        pmax + nmax <= cfg.max_seq,
        "prompt {pmax} + new {nmax} exceeds max_seq {}",
        cfg.max_seq
    );
    let mut rng = Rng::new(seed);
    let mut clock = 0u64;
    let mut quiet_gap_next = false;
    let requests = (0..params.requests)
        .map(|id| {
            if id > 0 {
                let mean = if quiet_gap_next {
                    params.off_interarrival
                } else {
                    params.on_interarrival
                };
                clock += exp_gap(&mut rng, mean);
            }
            // Geometric burst termination — drawn for every request so the
            // stream position is load-independent.
            quiet_gap_next = rng.uniform() < 1.0 / params.mean_burst;
            let plen = pmin + rng.below(pmax - pmin + 1);
            let mut prompt = vec![0usize];
            for _ in 1..plen {
                prompt.push(rng.below(cfg.vocab));
            }
            Request {
                id,
                arrival: clock,
                prompt,
                max_new: nmin + rng.below(nmax - nmin + 1),
                sampling: params.sampling,
                seed: request_seed(seed, 0xb7a5_7e11, id),
            }
        })
        .collect();
    let trace = Trace { requests };
    trace.validate(cfg);
    trace
}

/// Knobs of [`heavy_tail_trace`]: Poisson arrivals with bounded-Pareto
/// prompt and output lengths — most requests are short, a few are near
/// the context limit, which is what makes head-of-line blocking and
/// occupancy collapse visible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeavyTailParams {
    /// Number of requests.
    pub requests: usize,
    /// Mean inter-arrival gap in ticks (exponential).
    pub mean_interarrival: f64,
    /// Inclusive bounded-Pareto range of prompt lengths.
    pub prompt_range: (usize, usize),
    /// Inclusive bounded-Pareto range of generation budgets.
    pub new_range: (usize, usize),
    /// Pareto shape (smaller = heavier tail; must be positive).
    pub alpha: f64,
    /// Sampling rule shared by every request.
    pub sampling: Sampling,
}

/// Generate a seeded heavy-tailed trace: exponential arrival gaps,
/// bounded-Pareto prompt and output lengths (inverse-CDF draws). A pure
/// function of `(cfg, params, seed)`.
///
/// # Panics
///
/// Panics if a range is inverted, `alpha` is not positive, or the longest
/// request cannot fit in `cfg.max_seq`.
pub fn heavy_tail_trace(cfg: &ModelConfig, params: &HeavyTailParams, seed: u64) -> Trace {
    let (pmin, pmax) = params.prompt_range;
    let (nmin, nmax) = params.new_range;
    assert!(pmin >= 1 && pmin <= pmax, "inverted prompt_range");
    assert!(nmin >= 1 && nmin <= nmax, "inverted new_range");
    assert!(
        params.alpha > 0.0 && params.alpha.is_finite(),
        "alpha must be positive and finite"
    );
    assert!(
        pmax + nmax <= cfg.max_seq,
        "prompt {pmax} + new {nmax} exceeds max_seq {}",
        cfg.max_seq
    );
    let mut rng = Rng::new(seed);
    let mut clock = 0u64;
    let requests = (0..params.requests)
        .map(|id| {
            if id > 0 {
                clock += exp_gap(&mut rng, params.mean_interarrival);
            }
            let plen = bounded_pareto(&mut rng, pmin, pmax, params.alpha);
            let mut prompt = vec![0usize];
            for _ in 1..plen {
                prompt.push(rng.below(cfg.vocab));
            }
            Request {
                id,
                arrival: clock,
                prompt,
                max_new: bounded_pareto(&mut rng, nmin, nmax, params.alpha),
                sampling: params.sampling,
                seed: request_seed(seed, 0x4ea1_7a11, id),
            }
        })
        .collect();
    let trace = Trace { requests };
    trace.validate(cfg);
    trace
}

/// Knobs of [`flash_crowd_trace`]: a tight spike of requests that all
/// share one prompt prefix (the "everyone pastes the same article"
/// pattern) with short divergent tails — the scenario paged-KV prefix
/// sharing and admission queues feel the hardest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashCrowdParams {
    /// Number of requests.
    pub requests: usize,
    /// Mean inter-arrival gap in ticks (exponential; small = spike).
    pub mean_interarrival: f64,
    /// Length of the shared prompt prefix (≥ 1; first token is BOS 0).
    pub prefix_len: usize,
    /// Inclusive range of the per-request divergent tail length.
    pub tail_len: (usize, usize),
    /// Inclusive range of the per-request generation budget.
    pub new_tokens: (usize, usize),
    /// Sampling rule shared by every request.
    pub sampling: Sampling,
}

/// Generate a seeded flash-crowd trace: one shared prefix (drawn once
/// from `seed`), per-request divergent tails, arrivals packed into a
/// spike. A pure function of `(cfg, params, seed)`.
///
/// # Panics
///
/// Panics if a range is inverted, `prefix_len` is 0, or the longest
/// request cannot fit in `cfg.max_seq`.
pub fn flash_crowd_trace(cfg: &ModelConfig, params: &FlashCrowdParams, seed: u64) -> Trace {
    let (tmin, tmax) = params.tail_len;
    let (nmin, nmax) = params.new_tokens;
    assert!(params.prefix_len >= 1, "prefix_len must be >= 1");
    assert!(tmin <= tmax, "inverted tail_len range");
    assert!(nmin >= 1 && nmin <= nmax, "inverted new_tokens range");
    assert!(
        params.prefix_len + tmax + nmax <= cfg.max_seq,
        "prefix {} + tail {tmax} + new {nmax} exceeds max_seq {}",
        params.prefix_len,
        cfg.max_seq
    );
    let mut rng = Rng::new(seed);
    let mut prefix = vec![0usize];
    for _ in 1..params.prefix_len {
        prefix.push(rng.below(cfg.vocab));
    }
    let mut clock = 0u64;
    let requests = (0..params.requests)
        .map(|id| {
            if id > 0 {
                clock += exp_gap(&mut rng, params.mean_interarrival);
            }
            let tlen = tmin + rng.below(tmax - tmin + 1);
            let mut prompt = prefix.clone();
            for _ in 0..tlen {
                prompt.push(rng.below(cfg.vocab));
            }
            Request {
                id,
                arrival: clock,
                prompt,
                max_new: nmin + rng.below(nmax - nmin + 1),
                sampling: params.sampling,
                seed: request_seed(seed, 0xf1a5_c04d, id),
            }
        })
        .collect();
    let trace = Trace { requests };
    trace.validate(cfg);
    trace
}

/// The named trace-scenario library: four seed-deterministic load shapes
/// behind one dial. [`Scenario::trace`] scales each scenario's *arrival
/// rate* by a load multiplier while keeping prompts and budgets fixed —
/// the same `(scenario, requests, seed)` serves the same work at 1× and
/// 10×, so goodput differences are purely scheduling, never workload
/// drift (the `ext-overload` experiment's contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Open-loop Poisson arrivals, uniform lengths ([`synthetic_trace`]).
    Steady,
    /// On-off bursts separated by quiet gaps ([`bursty_trace`]).
    Bursty,
    /// Bounded-Pareto prompt/output lengths ([`heavy_tail_trace`]).
    HeavyTail,
    /// A spike sharing one prompt prefix ([`flash_crowd_trace`]).
    FlashCrowd,
}

impl Scenario {
    /// Every scenario, in reporting order.
    pub const ALL: [Scenario; 4] = [
        Scenario::Steady,
        Scenario::Bursty,
        Scenario::HeavyTail,
        Scenario::FlashCrowd,
    ];

    /// Short display name (also the experiment-table row label).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Steady => "steady",
            Scenario::Bursty => "bursty",
            Scenario::HeavyTail => "heavy-tail",
            Scenario::FlashCrowd => "flash-crowd",
        }
    }

    /// Generate this scenario's trace at an arrival-rate multiplier of
    /// `load` (1.0 = the scenario's nominal rate; 10.0 = ten times as
    /// fast). Request contents are independent of `load` (see the type
    /// docs); the built-in length ranges fit any model with
    /// `max_seq >= 40` (both repo test shapes).
    ///
    /// # Panics
    ///
    /// Panics if `load` is not positive and finite, or the model's
    /// context is too short for the scenario's ranges.
    pub fn trace(&self, cfg: &ModelConfig, requests: usize, load: f64, seed: u64) -> Trace {
        assert!(
            load > 0.0 && load.is_finite(),
            "load {load} must be positive and finite"
        );
        match self {
            Scenario::Steady => synthetic_trace(
                cfg,
                &TraceParams {
                    requests,
                    mean_interarrival: 12.0 / load,
                    prompt_len: (4, 10),
                    new_tokens: (6, 14),
                    sampling: Sampling::Greedy,
                },
                seed,
            ),
            Scenario::Bursty => bursty_trace(
                cfg,
                &BurstyParams {
                    requests,
                    on_interarrival: 4.0 / load,
                    off_interarrival: 48.0 / load,
                    mean_burst: 4.0,
                    prompt_len: (4, 10),
                    new_tokens: (6, 14),
                    sampling: Sampling::Greedy,
                },
                seed,
            ),
            Scenario::HeavyTail => heavy_tail_trace(
                cfg,
                &HeavyTailParams {
                    requests,
                    mean_interarrival: 12.0 / load,
                    prompt_range: (2, 24),
                    new_range: (2, 12),
                    alpha: 1.1,
                    sampling: Sampling::Greedy,
                },
                seed,
            ),
            Scenario::FlashCrowd => flash_crowd_trace(
                cfg,
                &FlashCrowdParams {
                    requests,
                    mean_interarrival: 3.0 / load,
                    prefix_len: 12,
                    tail_len: (1, 6),
                    new_tokens: (4, 10),
                    sampling: Sampling::Greedy,
                },
                seed,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_is_deterministic_and_valid() {
        let cfg = ModelConfig::tiny();
        let p = TraceParams::light(6);
        let a = synthetic_trace(&cfg, &p, 9);
        let b = synthetic_trace(&cfg, &p, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let c = synthetic_trace(&cfg, &p, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_spread() {
        let cfg = ModelConfig::tiny();
        let t = synthetic_trace(&cfg, &TraceParams::light(8), 3);
        let arr: Vec<u64> = t.requests.iter().map(|r| r.arrival).collect();
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.last().unwrap() > &0, "gaps should accumulate");
    }

    #[test]
    fn zero_interarrival_means_burst() {
        let cfg = ModelConfig::tiny();
        let p = TraceParams {
            mean_interarrival: 0.0,
            ..TraceParams::light(4)
        };
        let t = synthetic_trace(&cfg, &p, 1);
        assert!(t.requests.iter().all(|r| r.arrival == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn oversized_requests_rejected() {
        let cfg = ModelConfig::tiny();
        let p = TraceParams {
            prompt_len: (30, 30),
            new_tokens: (20, 20),
            ..TraceParams::light(1)
        };
        let _ = synthetic_trace(&cfg, &p, 0);
    }

    #[test]
    fn seeds_differ_per_request() {
        let cfg = ModelConfig::tiny();
        let t = synthetic_trace(&cfg, &TraceParams::light(5), 2);
        let mut seeds: Vec<u64> = t.requests.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5);
    }

    #[test]
    fn scenarios_are_deterministic_and_valid() {
        let cfg = ModelConfig::tiny();
        for sc in Scenario::ALL {
            let a = sc.trace(&cfg, 10, 1.0, 7);
            let b = sc.trace(&cfg, 10, 1.0, 7);
            assert_eq!(a, b, "{} must be a pure function of its seed", sc.name());
            assert_eq!(a.len(), 10, "{}", sc.name());
            a.validate(&cfg);
            let c = sc.trace(&cfg, 10, 1.0, 8);
            assert_ne!(a, c, "{} must vary with the seed", sc.name());
        }
    }

    #[test]
    fn load_moves_arrivals_but_not_request_contents() {
        let cfg = ModelConfig::tiny();
        for sc in Scenario::ALL {
            let light = sc.trace(&cfg, 12, 1.0, 11);
            let crush = sc.trace(&cfg, 12, 10.0, 11);
            let strip = |t: &Trace| {
                t.requests
                    .iter()
                    .map(|r| (r.id, r.prompt.clone(), r.max_new, r.seed))
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                strip(&light),
                strip(&crush),
                "{}: load must only rescale arrivals",
                sc.name()
            );
            let span = |t: &Trace| t.requests.last().unwrap().arrival;
            assert!(
                span(&crush) <= span(&light),
                "{}: 10x load should compress the arrival span ({} vs {})",
                sc.name(),
                span(&crush),
                span(&light)
            );
        }
    }

    #[test]
    fn scenarios_differ_from_each_other_at_the_same_seed() {
        let cfg = ModelConfig::tiny();
        let traces: Vec<Trace> = Scenario::ALL
            .iter()
            .map(|sc| sc.trace(&cfg, 8, 1.0, 3))
            .collect();
        for i in 0..traces.len() {
            for j in i + 1..traces.len() {
                assert_ne!(
                    traces[i],
                    traces[j],
                    "{} vs {} collided",
                    Scenario::ALL[i].name(),
                    Scenario::ALL[j].name()
                );
            }
        }
    }

    #[test]
    fn bursty_trace_has_on_off_structure() {
        let cfg = ModelConfig::tiny();
        let t = bursty_trace(
            &cfg,
            &BurstyParams {
                requests: 24,
                on_interarrival: 2.0,
                off_interarrival: 80.0,
                mean_burst: 4.0,
                prompt_len: (2, 6),
                new_tokens: (2, 6),
                sampling: Sampling::Greedy,
            },
            5,
        );
        let gaps: Vec<u64> = t
            .requests
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect();
        // With an off mean 40x the on mean, the trace must show both
        // regimes: tight in-burst gaps and at least one long quiet gap.
        assert!(gaps.iter().any(|&g| g <= 6), "no in-burst gaps: {gaps:?}");
        assert!(gaps.iter().any(|&g| g >= 40), "no quiet gaps: {gaps:?}");
    }

    #[test]
    fn heavy_tail_lengths_stay_in_range_and_skew_short() {
        let cfg = ModelConfig::tiny();
        let t = heavy_tail_trace(
            &cfg,
            &HeavyTailParams {
                requests: 64,
                mean_interarrival: 4.0,
                prompt_range: (2, 24),
                new_range: (2, 12),
                alpha: 1.1,
                sampling: Sampling::Greedy,
            },
            9,
        );
        let lens: Vec<usize> = t.requests.iter().map(|r| r.prompt.len()).collect();
        assert!(lens.iter().all(|&l| (2..=24).contains(&l)));
        assert!(t.requests.iter().all(|r| (2..=12).contains(&r.max_new)));
        // Heavy tail: the median sits near the floor, the max near the cap.
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        assert!(
            sorted[sorted.len() / 2] <= 6,
            "median too large: {sorted:?}"
        );
        assert!(*sorted.last().unwrap() >= 12, "no tail: {sorted:?}");
    }

    #[test]
    fn flash_crowd_shares_a_prefix_and_diverges() {
        let cfg = ModelConfig::tiny();
        let params = FlashCrowdParams {
            requests: 8,
            mean_interarrival: 2.0,
            prefix_len: 12,
            tail_len: (1, 6),
            new_tokens: (2, 6),
            sampling: Sampling::Greedy,
        };
        let t = flash_crowd_trace(&cfg, &params, 13);
        let prefix = &t.requests[0].prompt[..12];
        for r in &t.requests {
            assert_eq!(&r.prompt[..12], prefix, "request {} lost the prefix", r.id);
            assert!(r.prompt.len() > 12, "request {} has no tail", r.id);
        }
        // Tails diverge somewhere (else prefix sharing is trivial).
        assert!(
            t.requests
                .windows(2)
                .any(|w| w[0].prompt[12..] != w[1].prompt[12..]),
            "all tails identical"
        );
    }
}
