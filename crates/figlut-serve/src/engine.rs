//! Batched execution of live sessions over one shared model.
//!
//! [`BatchEngine`] owns nothing but a reference to the (packed) model and a
//! [`Backend`]; session state — KV cache, sampling RNG, emitted tokens,
//! prefill progress — lives in [`SessionState`] so the scheduler can move
//! sessions in and out of the running batch freely. One
//! [`BatchEngine::step`] call gathers every decode row *and* the current
//! prefill chunk into a single `rows × d` pass through
//! [`Transformer::forward_batch`], so one traversal of the shared packed
//! weights serves every token-row in flight — the software analogue of the
//! paper's weight-traffic amortization across sequences in flight, with
//! prefill no longer segregated into its own blocking step
//! ([`BatchEngine::prefill`] and [`BatchEngine::decode`] are thin wrappers
//! over the same fused step).
//!
//! **Batch-invariance.** Every per-session computation (attention over the
//! session's own cache, LayerNorm, sampling from the session's own RNG) is
//! strictly per-row, and every backend computes GEMM rows independently in
//! a fixed order. Therefore the token stream a session emits is a pure
//! function of its [`Request`] — identical whether the session runs alone
//! ([`BatchEngine::solo_run`]) or inside any batch mix the scheduler
//! assembles. The property suite in `tests/` pins this bit-for-bit.

use crate::request::{Request, Sampling};
use figlut_model::rng::Rng;
use figlut_model::transformer::KvCache;
use figlut_model::{Backend, Transformer};

/// Why a session left the running set.
///
/// Memory pressure is **not** a finish reason: under pool pressure the
/// scheduler preempts (swaps a session's KV blocks to host and restores
/// them later, bit-identically) instead of killing. Short of its budget a
/// session ends only at the model's positional limit — or before any
/// compute at all, when an admission policy sheds it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinishReason {
    /// Emitted its full `max_new` budget.
    Completed,
    /// The model's position table (`max_seq`) ran out before the budget
    /// was spent — no backing store can extend a model past its learned
    /// positions, so the session finishes early.
    ContextExhausted,
    /// Shed from the pending queue by the scheduler's admission policy
    /// ([`crate::AdmissionPolicy`]) before any compute ran: zero tokens,
    /// `first_token == finish` stamped at the shed tick. Shed requests are
    /// excluded from goodput — they met no latency contract.
    Shed,
}

/// The live state of one admitted session.
#[derive(Clone, Debug)]
pub struct SessionState {
    /// The originating request.
    pub request: Request,
    /// Tokens emitted so far (the first one is produced by the session's
    /// final prefill chunk).
    pub generated: Vec<usize>,
    /// Virtual-clock tick at which each emitted token appeared (pushed by
    /// the scheduler at the end of the emitting step; `token_ticks[0]` is
    /// the TTFT stamp — set only when the *last* prefill chunk samples the
    /// first token).
    pub token_ticks: Vec<u64>,
    /// Prompt tokens consumed by prefill chunks so far.
    pub prefilled: usize,
    /// Virtual-clock tick at which the scheduler admitted the request out
    /// of the pending queue (stamped by the serving loop; 0 until then).
    /// `admitted - arrival` is pure queueing delay, which TTFT alone
    /// conflates with prefill compute time.
    pub admitted: u64,
    cache: KvCache,
    rng: Rng,
}

impl SessionState {
    /// KV-cache positions consumed so far.
    pub fn positions(&self) -> usize {
        self.cache.len()
    }

    /// `true` once the whole prompt has been consumed (the session is
    /// decodable; its first token has been sampled).
    pub fn is_prefilled(&self) -> bool {
        self.prefilled == self.request.prompt.len()
    }

    /// Prompt tokens not yet consumed by a prefill chunk.
    pub fn prefill_remaining(&self) -> usize {
        self.request.prompt.len() - self.prefilled
    }

    /// `true` once the generation budget is spent.
    pub fn is_complete(&self) -> bool {
        self.generated.len() >= self.request.max_new
    }

    /// `true` if the session hit the model's positional limit: budget
    /// unspent but no position left to decode the next token into.
    pub fn is_context_capped(&self, max_seq: usize) -> bool {
        !self.is_complete() && self.cache.len() >= max_seq
    }

    /// The terminal state, if the session is finished either way.
    pub fn finish_reason(&self, max_seq: usize) -> Option<FinishReason> {
        if self.is_complete() {
            Some(FinishReason::Completed)
        } else if self.is_context_capped(max_seq) {
            Some(FinishReason::ContextExhausted)
        } else {
            None
        }
    }

    /// `true` while the session is preempted (KV contents on host, no
    /// blocks held). A swapped session must be [`SessionState::restore`]d
    /// before it can step again.
    pub fn is_swapped(&self) -> bool {
        self.cache.is_swapped()
    }

    /// Preempt: swap the session's KV blocks out to host. Generated
    /// tokens, RNG state, and prefill progress stay in place, so a later
    /// restore resumes bit-identically. Returns the KV positions copied.
    pub fn swap_out(&mut self) -> usize {
        self.cache.swap_out()
    }

    /// Re-admit a preempted session: copy its KV contents back into fresh
    /// pool blocks. Returns the KV positions copied.
    pub fn restore(&mut self) -> usize {
        self.cache.restore()
    }

    /// Pool blocks a restore will allocate (0 when not swapped).
    pub fn restore_blocks(&self) -> usize {
        self.cache.restore_blocks()
    }

    /// Pool blocks that stepping this session by `rows` positions may
    /// allocate (0 for contiguous caches).
    pub fn blocks_needed(&self, rows: usize) -> usize {
        self.cache.blocks_needed(rows)
    }

    /// Read access to the session's cache (registration, accounting).
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// Fault injection: silently flip one stored KV bit, chosen
    /// deterministically from `salt`, without re-stamping the block's
    /// checksum (see [`KvCache::corrupt_row`]). `false` when the session's
    /// cache holds nothing corruptible (non-paged or empty).
    pub fn corrupt_kv(&mut self, salt: u64) -> bool {
        self.cache.corrupt_row(salt)
    }

    /// Verify the session's resident KV blocks against their stored
    /// checksums: `Err(block_index)` names the first corrupted block.
    /// Vacuously `Ok` while the checksum pass is disabled (see
    /// [`figlut_model::set_kv_checksums`]).
    pub fn verify_kv(&self) -> Result<(), usize> {
        self.cache.verify_checksums()
    }

    /// Re-target a preempted session's host image at `pool`, so a
    /// checkpointed session can be restored into a fresh pool after the
    /// pool that wrote it died with a crashed run (see
    /// [`KvCache::rebind_pool`]).
    ///
    /// # Panics
    ///
    /// Panics if the session is not swapped out or the pool shapes differ.
    pub fn rebind_pool(&mut self, pool: &figlut_model::BlockPool) {
        self.cache.rebind_pool(pool);
    }
}

/// A shared model + backend that executes prefill and batched decode steps.
#[derive(Clone, Debug)]
pub struct BatchEngine<'m> {
    model: &'m Transformer,
    backend: Backend,
}

impl<'m> BatchEngine<'m> {
    /// Wrap a model and an execution backend.
    pub fn new(model: &'m Transformer, backend: Backend) -> Self {
        Self { model, backend }
    }

    /// The model being served.
    pub fn model(&self) -> &Transformer {
        self.model
    }

    /// Create the session state for an admitted request (no compute yet),
    /// with the default contiguous KV cache.
    pub fn start(&self, request: Request) -> SessionState {
        let cache = self.model.new_cache();
        self.start_with_cache(request, cache)
    }

    /// Create the session state for an admitted request over a
    /// caller-provided cache — a paged cache from a shared [`BlockPool`]
    /// (possibly pre-loaded with an adopted shared prefix), or the default
    /// contiguous one. The cache choice is invisible to the token stream.
    ///
    /// [`BlockPool`]: figlut_model::BlockPool
    pub fn start_with_cache(&self, request: Request, cache: KvCache) -> SessionState {
        let rng = Rng::new(request.seed);
        SessionState {
            request,
            generated: Vec::new(),
            token_ticks: Vec::new(),
            prefilled: 0,
            admitted: 0,
            cache,
            rng,
        }
    }

    /// Run the session's prompt through the model as one chunk, sample its
    /// first token, and return the number of token-rows processed (the
    /// prompt length — the step's virtual-clock weight). Thin wrapper over
    /// [`BatchEngine::step`] with no decode rows and an unbounded chunk
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if the session was already prefilled.
    pub fn prefill(&self, s: &mut SessionState) -> usize {
        let budget = s.request.prompt.len();
        self.step(&mut [], Some(s), budget)
    }

    /// One continuous-batching decode step: every session consumes its last
    /// emitted token and samples the next one. Thin wrapper over
    /// [`BatchEngine::step`] with no prefill chunk.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or a session that is unprefilled, complete,
    /// swapped out, or past the model's positional limit (each guard names
    /// the offending request id — a preempted session must be restored, and
    /// a context-capped one must leave the running set, before a step).
    pub fn decode(&self, sessions: &mut [&mut SessionState]) {
        assert!(!sessions.is_empty(), "empty decode batch");
        let _ = self.step(sessions, None, 0);
    }

    /// One fused **mixed step**: every `decoding` session consumes its last
    /// emitted token, and `prefilling` (if any) consumes its next prompt
    /// chunk of up to `budget` tokens — all token-rows in a single
    /// [`Transformer::forward_batch`] call, so one traversal of the shared
    /// packed weights serves decode and prefill rows alike. Returns the
    /// number of prompt rows consumed (0 without a prefill part).
    ///
    /// When the chunk is the prompt's last, its final logits row samples the
    /// session's first token — exactly the row a whole-prompt prefill
    /// samples, so chunking never changes the token (the session's RNG is
    /// untouched until then). Intermediate chunks sample nothing.
    ///
    /// # Panics
    ///
    /// Panics on a step with no rows at all, a decode session that is
    /// unprefilled, complete, swapped out, or past the positional limit
    /// (by request id), a prefill session that is already fully prefilled
    /// or swapped out, or a zero `budget` with a prefill session.
    pub fn step(
        &self,
        decoding: &mut [&mut SessionState],
        mut prefilling: Option<&mut SessionState>,
        budget: usize,
    ) -> usize {
        let max_seq = self.model.cfg.max_seq;
        assert!(
            !decoding.is_empty() || prefilling.is_some(),
            "empty step: no decode rows and no prefill chunk"
        );
        let tokens: Vec<usize> = decoding
            .iter()
            .map(|s| {
                assert!(s.is_prefilled(), "request {}: not prefilled", s.request.id);
                assert!(
                    !s.is_complete(),
                    "request {}: already complete",
                    s.request.id
                );
                // Guards here, where the request is known: deeper layers
                // only know batch indices.
                assert!(
                    !s.is_swapped(),
                    "request {}: stepped while swapped out — restore before decoding",
                    s.request.id
                );
                assert!(
                    s.positions() < max_seq,
                    "request {}: context exhausted ({max_seq} positions) — finish instead of decoding",
                    s.request.id
                );
                // audit: allow(panic) — decoding sessions are prefilled, so generated holds the prompt-final token
                *s.generated.last().unwrap()
            })
            .collect();
        let (start, take) = match &prefilling {
            Some(s) => {
                assert!(budget >= 1, "prefill session with a zero chunk budget");
                assert!(!s.is_prefilled(), "session {} re-prefilled", s.request.id);
                assert!(
                    !s.is_swapped(),
                    "request {}: stepped while swapped out — restore before prefilling",
                    s.request.id
                );
                let start = s.prefilled;
                let take = budget.min(s.prefill_remaining());
                assert!(
                    s.positions() + take <= max_seq,
                    "request {}: prefill chunk overflows the KV cache",
                    s.request.id
                );
                (start, take)
            }
            None => (0, 0),
        };
        let mut caches: Vec<KvCache> = decoding
            .iter_mut()
            .map(|s| std::mem::take(&mut s.cache))
            .collect();
        if let Some(s) = prefilling.as_mut() {
            caches.push(std::mem::take(&mut s.cache));
        }
        let logits = {
            let mut chunks: Vec<&[usize]> = tokens.iter().map(std::slice::from_ref).collect();
            if let Some(s) = &prefilling {
                chunks.push(&s.request.prompt[start..start + take]);
            }
            self.model
                .forward_batch(&chunks, &mut caches, &self.backend)
        };
        let mut caches = caches.into_iter();
        for (i, s) in decoding.iter_mut().enumerate() {
            // audit: allow(panic) — forward_batch returns one cache per submitted chunk, in order
            s.cache = caches.next().unwrap();
            let next = sample(logits.row(i), &s.request.sampling, &mut s.rng);
            s.generated.push(next);
        }
        if let Some(s) = prefilling {
            // audit: allow(panic) — forward_batch returns one cache per submitted chunk, in order
            s.cache = caches.next().unwrap();
            s.prefilled = start + take;
            if s.is_prefilled() {
                // The prompt's last row — bit-identical to the row a
                // whole-prompt prefill samples — emits the first token.
                let first = sample(
                    logits.row(decoding.len() + take - 1),
                    &s.request.sampling,
                    &mut s.rng,
                );
                s.generated.push(first);
            }
        }
        take
    }

    /// The batch-1 reference: run `request` completely alone (fresh state,
    /// prefill, then decode steps until completion or eviction) and return
    /// its emitted tokens. This is the ground truth the scheduler's output
    /// must match token-for-token at every `max_batch` and policy.
    pub fn solo_run(&self, request: &Request) -> Vec<usize> {
        let max_seq = self.model.cfg.max_seq;
        let mut s = self.start(request.clone());
        let _ = self.prefill(&mut s);
        while s.finish_reason(max_seq).is_none() {
            self.decode(&mut [&mut s]);
        }
        s.generated
    }
}

/// Deterministic token selection from one logits row.
///
/// # Panics
///
/// Panics if the row contains a non-finite value: greedy argmax would
/// silently return token 0 on an all-NaN row (`v > row[best]` is false for
/// every comparison), and temperature weights would be NaN-poisoned — a
/// corrupted model must fail loudly, not emit plausible-looking tokens.
fn sample(row: &[f64], sampling: &Sampling, rng: &mut Rng) -> usize {
    assert!(
        row.iter().all(|v| v.is_finite()),
        "non-finite logits row: refusing to sample from a poisoned model"
    );
    match sampling {
        Sampling::Greedy => {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        }
        Sampling::Temperature(t) => {
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let weights: Vec<f64> = row.iter().map(|&l| ((l - max) / t).exp()).collect();
            rng.categorical(&weights)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{synthetic_trace, TraceParams};
    use figlut_model::ModelConfig;

    fn engine_model() -> Transformer {
        Transformer::teacher(ModelConfig::tiny(), 77)
    }

    #[test]
    fn solo_run_is_deterministic_and_within_budget() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let t = synthetic_trace(&m.cfg, &TraceParams::light(3), 5);
        for r in &t.requests {
            let a = e.solo_run(r);
            let b = e.solo_run(r);
            assert_eq!(a, b);
            assert!(!a.is_empty() && a.len() <= r.max_new);
            assert!(a.iter().all(|&tok| tok < m.cfg.vocab));
        }
    }

    #[test]
    fn batched_decode_matches_solo_tokens() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let t = synthetic_trace(&m.cfg, &TraceParams::light(4), 11);
        let solo: Vec<Vec<usize>> = t.requests.iter().map(|r| e.solo_run(r)).collect();
        let mut sessions: Vec<SessionState> =
            t.requests.iter().map(|r| e.start(r.clone())).collect();
        for s in &mut sessions {
            let _ = e.prefill(s);
        }
        let max_seq = m.cfg.max_seq;
        loop {
            let mut live: Vec<&mut SessionState> = sessions
                .iter_mut()
                .filter(|s| s.finish_reason(max_seq).is_none())
                .collect();
            if live.is_empty() {
                break;
            }
            e.decode(&mut live);
        }
        for (s, want) in sessions.iter().zip(&solo) {
            assert_eq!(&s.generated, want, "request {}", s.request.id);
        }
    }

    #[test]
    fn temperature_sampling_is_per_session_deterministic() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let mut t = synthetic_trace(&m.cfg, &TraceParams::light(2), 8);
        for r in &mut t.requests {
            r.sampling = Sampling::Temperature(0.8);
        }
        let solo: Vec<Vec<usize>> = t.requests.iter().map(|r| e.solo_run(r)).collect();
        assert_eq!(solo[0], e.solo_run(&t.requests[0]));
        // Batched pair must reproduce both solo streams: the RNGs are
        // per-session, so co-scheduling cannot perturb the draws.
        let mut a = e.start(t.requests[0].clone());
        let mut b = e.start(t.requests[1].clone());
        let _ = e.prefill(&mut a);
        let _ = e.prefill(&mut b);
        let max_seq = m.cfg.max_seq;
        while a.finish_reason(max_seq).is_none() && b.finish_reason(max_seq).is_none() {
            e.decode(&mut [&mut a, &mut b]);
        }
        for s in [&mut a, &mut b] {
            while s.finish_reason(max_seq).is_none() {
                e.decode(&mut [s]);
            }
        }
        assert_eq!(a.generated, solo[0]);
        assert_eq!(b.generated, solo[1]);
    }

    #[test]
    fn context_exhaustion_fires_at_the_positional_limit() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        // A request whose budget cannot fit: prompt 30 + 20 new > max_seq 40.
        // (Built by hand — synthetic_trace refuses to generate these.)
        let r = Request {
            id: 0,
            arrival: 0,
            prompt: (0..30).map(|i| i % m.cfg.vocab).collect(),
            max_new: 20,
            sampling: Sampling::Greedy,
            seed: 1,
        };
        let mut s = e.start(r.clone());
        let _ = e.prefill(&mut s);
        while s.finish_reason(m.cfg.max_seq).is_none() {
            e.decode(&mut [&mut s]);
        }
        assert_eq!(
            s.finish_reason(m.cfg.max_seq),
            Some(FinishReason::ContextExhausted)
        );
        // 30 prompt positions + 10 decodes exhaust the 40-position table;
        // prefill plus those decodes emitted 11 of the 20 budgeted tokens.
        assert_eq!(s.generated.len(), 11);
        assert_eq!(s.generated, e.solo_run(&r));
    }

    #[test]
    #[should_panic(expected = "re-prefilled")]
    fn double_prefill_panics() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let t = synthetic_trace(&m.cfg, &TraceParams::light(1), 5);
        let mut s = e.start(t.requests[0].clone());
        let _ = e.prefill(&mut s);
        let _ = e.prefill(&mut s);
    }

    #[test]
    #[should_panic(expected = "request 7: context exhausted")]
    fn decoding_a_context_capped_session_panics_with_the_request_id() {
        // A position-exhausted session handed to a decode step must be
        // caught at the engine layer, where the request id is known — not
        // deep inside decode_batch, which can only name the batch index.
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let r = Request {
            id: 7,
            arrival: 0,
            prompt: (0..30).map(|i| i % m.cfg.vocab).collect(),
            max_new: 20, // 30 + 20 > max_seq 40: will exhaust the positions
            sampling: Sampling::Greedy,
            seed: 1,
        };
        let mut s = e.start(r);
        let _ = e.prefill(&mut s);
        while !s.is_context_capped(m.cfg.max_seq) {
            e.decode(&mut [&mut s]);
        }
        e.decode(&mut [&mut s]); // must panic, naming request 7
    }

    #[test]
    #[should_panic(expected = "request 9: stepped while swapped out")]
    fn decoding_a_swapped_session_panics_with_the_request_id() {
        // The preemption-era companion of the guard above: a session the
        // scheduler swapped out must never reach a step un-restored.
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let pool = figlut_model::BlockPool::for_model(&m.cfg, 4, None);
        let mut t = synthetic_trace(&m.cfg, &TraceParams::light(1), 5);
        t.requests[0].id = 9;
        let mut s = e.start_with_cache(t.requests[0].clone(), m.new_paged_cache(&pool));
        let _ = e.prefill(&mut s);
        let _ = s.swap_out();
        e.decode(&mut [&mut s]); // must panic, naming request 9
    }

    #[test]
    fn preempt_restore_resumes_the_solo_stream_bit_identically() {
        // Swap a session out mid-generation, restore it, and finish: the
        // emitted tokens must equal the never-preempted solo run.
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let pool = figlut_model::BlockPool::for_model(&m.cfg, 2, None);
        let t = synthetic_trace(&m.cfg, &TraceParams::light(2), 13);
        for r in &t.requests {
            let solo = e.solo_run(r);
            let mut s = e.start_with_cache(r.clone(), m.new_paged_cache(&pool));
            let _ = e.prefill(&mut s);
            let mut preempts = 0;
            while s.finish_reason(m.cfg.max_seq).is_none() {
                let rows_out = s.swap_out();
                assert!(s.is_swapped());
                let rows_in = s.restore();
                assert_eq!(rows_out, rows_in);
                preempts += 1;
                e.decode(&mut [&mut s]);
            }
            assert!(preempts >= 1);
            assert_eq!(s.generated, solo, "request {}", r.id);
        }
        assert_eq!(pool.live_blocks(), 0, "sessions returned their blocks");
    }

    #[test]
    #[should_panic(expected = "non-finite logits row")]
    fn sampling_nan_poisoned_logits_panics() {
        // Greedy argmax over all-NaN logits would silently pick token 0
        // (every `v > row[best]` comparison is false); it must panic.
        let mut rng = Rng::new(1);
        let row = vec![f64::NAN; 8];
        let _ = sample(&row, &Sampling::Greedy, &mut rng);
    }

    #[test]
    fn chunked_prefill_emits_the_same_first_token() {
        // Feeding the prompt through `step` in chunks of 1, 2, and 3 must
        // produce the same first token and cache state as the whole-prompt
        // prefill — the last chunk samples the same logits row.
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let t = synthetic_trace(&m.cfg, &TraceParams::light(3), 19);
        for r in &t.requests {
            let mut whole = e.start(r.clone());
            let _ = e.prefill(&mut whole);
            for budget in [1usize, 2, 3] {
                let mut s = e.start(r.clone());
                let mut consumed = 0;
                while !s.is_prefilled() {
                    assert!(s.generated.is_empty(), "sampled before the last chunk");
                    consumed += e.step(&mut [], Some(&mut s), budget);
                }
                assert_eq!(consumed, r.prompt.len());
                assert_eq!(s.generated, whole.generated, "budget {budget}");
                assert_eq!(s.positions(), whole.positions());
            }
        }
    }

    #[test]
    fn mixed_step_matches_segregated_phases() {
        // One fused step (decodes + prefill chunk) must leave every session
        // in exactly the state that separate decode and prefill-chunk steps
        // produce — and, transitively, the solo batch-1 state.
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let t = synthetic_trace(&m.cfg, &TraceParams::light(4), 23);
        let solo: Vec<Vec<usize>> = t.requests.iter().map(|r| e.solo_run(r)).collect();

        // Two decoding sessions + one session prefilled in chunks of 2,
        // everything fused into mixed steps.
        let mut a = e.start(t.requests[0].clone());
        let mut b = e.start(t.requests[1].clone());
        let mut c = e.start(t.requests[2].clone());
        let _ = e.prefill(&mut a);
        let _ = e.prefill(&mut b);
        let max_seq = m.cfg.max_seq;
        while !c.is_prefilled() {
            let mut decoding: Vec<&mut SessionState> = Vec::new();
            for s in [&mut a, &mut b] {
                if s.finish_reason(max_seq).is_none() {
                    decoding.push(s);
                }
            }
            let _ = e.step(&mut decoding, Some(&mut c), 2);
        }
        for s in [&mut a, &mut b, &mut c] {
            while s.finish_reason(max_seq).is_none() {
                e.decode(&mut [s]);
            }
        }
        assert_eq!(a.generated, solo[0]);
        assert_eq!(b.generated, solo[1]);
        assert_eq!(c.generated, solo[2]);
    }
}
