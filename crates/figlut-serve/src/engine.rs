//! Batched execution of live sessions over one shared model.
//!
//! [`BatchEngine`] owns nothing but a reference to the (packed) model and a
//! [`Backend`]; session state — KV cache, sampling RNG, emitted tokens —
//! lives in [`SessionState`] so the scheduler can move sessions in and out
//! of the running batch freely. One [`BatchEngine::decode`] call gathers
//! every live session into a single `batch × d` step through
//! [`Transformer::decode_batch`], so one traversal of the shared packed
//! weights serves the whole batch — the software analogue of the paper's
//! weight-traffic amortization across sequences in flight.
//!
//! **Batch-invariance.** Every per-session computation (attention over the
//! session's own cache, LayerNorm, sampling from the session's own RNG) is
//! strictly per-row, and every backend computes GEMM rows independently in
//! a fixed order. Therefore the token stream a session emits is a pure
//! function of its [`Request`] — identical whether the session runs alone
//! ([`BatchEngine::solo_run`]) or inside any batch mix the scheduler
//! assembles. The property suite in `tests/` pins this bit-for-bit.

use crate::request::{Request, Sampling};
use figlut_model::rng::Rng;
use figlut_model::transformer::KvCache;
use figlut_model::{Backend, Transformer};

/// Why a session left the running set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinishReason {
    /// Emitted its full `max_new` budget.
    Completed,
    /// Evicted: the KV cache reached `max_seq` before the budget was spent.
    CacheFull,
}

/// The live state of one admitted session.
#[derive(Clone, Debug)]
pub struct SessionState {
    /// The originating request.
    pub request: Request,
    /// Tokens emitted so far (the first one is produced by prefill).
    pub generated: Vec<usize>,
    /// Virtual-clock tick at which the first token was emitted (set by the
    /// scheduler at the end of the session's prefill step).
    pub first_token_tick: Option<u64>,
    cache: KvCache,
    rng: Rng,
}

impl SessionState {
    /// KV-cache positions consumed so far.
    pub fn positions(&self) -> usize {
        self.cache.len()
    }

    /// `true` once the generation budget is spent.
    pub fn is_complete(&self) -> bool {
        self.generated.len() >= self.request.max_new
    }

    /// `true` if the session must be evicted: budget unspent but no cache
    /// slot left to decode the next token into.
    pub fn is_evicted(&self, max_seq: usize) -> bool {
        !self.is_complete() && self.cache.len() >= max_seq
    }

    /// The terminal state, if the session is finished either way.
    pub fn finish_reason(&self, max_seq: usize) -> Option<FinishReason> {
        if self.is_complete() {
            Some(FinishReason::Completed)
        } else if self.is_evicted(max_seq) {
            Some(FinishReason::CacheFull)
        } else {
            None
        }
    }
}

/// A shared model + backend that executes prefill and batched decode steps.
#[derive(Clone, Debug)]
pub struct BatchEngine<'m> {
    model: &'m Transformer,
    backend: Backend,
}

impl<'m> BatchEngine<'m> {
    /// Wrap a model and an execution backend.
    pub fn new(model: &'m Transformer, backend: Backend) -> Self {
        Self { model, backend }
    }

    /// The model being served.
    pub fn model(&self) -> &Transformer {
        self.model
    }

    /// Create the session state for an admitted request (no compute yet).
    pub fn start(&self, request: Request) -> SessionState {
        let rng = Rng::new(request.seed);
        SessionState {
            request,
            generated: Vec::new(),
            first_token_tick: None,
            cache: self.model.new_cache(),
            rng,
        }
    }

    /// Run the session's prompt through the model as one chunk, sample its
    /// first token, and return the number of token-rows processed (the
    /// prompt length — the step's virtual-clock weight).
    ///
    /// # Panics
    ///
    /// Panics if the session was already prefilled.
    pub fn prefill(&self, s: &mut SessionState) -> usize {
        assert!(
            s.generated.is_empty(),
            "session {} re-prefilled",
            s.request.id
        );
        let logits = self
            .model
            .prefill(&s.request.prompt, &mut s.cache, &self.backend);
        let first = sample(
            logits.row(logits.rows() - 1),
            &s.request.sampling,
            &mut s.rng,
        );
        s.generated.push(first);
        s.request.prompt.len()
    }

    /// One continuous-batching decode step: every session consumes its last
    /// emitted token and samples the next one, through a single
    /// [`Transformer::decode_batch`] call over the shared weights.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or a session that is unprefilled, complete,
    /// or out of cache.
    pub fn decode(&self, sessions: &mut [&mut SessionState]) {
        assert!(!sessions.is_empty(), "empty decode batch");
        let tokens: Vec<usize> = sessions
            .iter()
            .map(|s| {
                assert!(
                    !s.generated.is_empty(),
                    "session {} not prefilled",
                    s.request.id
                );
                assert!(
                    !s.is_complete(),
                    "session {} already complete",
                    s.request.id
                );
                *s.generated.last().unwrap()
            })
            .collect();
        let mut caches: Vec<KvCache> = sessions
            .iter_mut()
            .map(|s| std::mem::take(&mut s.cache))
            .collect();
        let logits = self.model.decode_batch(&tokens, &mut caches, &self.backend);
        for ((i, s), cache) in sessions.iter_mut().enumerate().zip(caches) {
            s.cache = cache;
            let next = sample(logits.row(i), &s.request.sampling, &mut s.rng);
            s.generated.push(next);
        }
    }

    /// The batch-1 reference: run `request` completely alone (fresh state,
    /// prefill, then decode steps until completion or eviction) and return
    /// its emitted tokens. This is the ground truth the scheduler's output
    /// must match token-for-token at every `max_batch` and policy.
    pub fn solo_run(&self, request: &Request) -> Vec<usize> {
        let max_seq = self.model.cfg.max_seq;
        let mut s = self.start(request.clone());
        let _ = self.prefill(&mut s);
        while s.finish_reason(max_seq).is_none() {
            self.decode(&mut [&mut s]);
        }
        s.generated
    }
}

/// Deterministic token selection from one logits row.
fn sample(row: &[f64], sampling: &Sampling, rng: &mut Rng) -> usize {
    match sampling {
        Sampling::Greedy => {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        }
        Sampling::Temperature(t) => {
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let weights: Vec<f64> = row.iter().map(|&l| ((l - max) / t).exp()).collect();
            rng.categorical(&weights)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{synthetic_trace, TraceParams};
    use figlut_model::ModelConfig;

    fn engine_model() -> Transformer {
        Transformer::teacher(ModelConfig::tiny(), 77)
    }

    #[test]
    fn solo_run_is_deterministic_and_within_budget() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let t = synthetic_trace(&m.cfg, &TraceParams::light(3), 5);
        for r in &t.requests {
            let a = e.solo_run(r);
            let b = e.solo_run(r);
            assert_eq!(a, b);
            assert!(!a.is_empty() && a.len() <= r.max_new);
            assert!(a.iter().all(|&tok| tok < m.cfg.vocab));
        }
    }

    #[test]
    fn batched_decode_matches_solo_tokens() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let t = synthetic_trace(&m.cfg, &TraceParams::light(4), 11);
        let solo: Vec<Vec<usize>> = t.requests.iter().map(|r| e.solo_run(r)).collect();
        let mut sessions: Vec<SessionState> =
            t.requests.iter().map(|r| e.start(r.clone())).collect();
        for s in &mut sessions {
            let _ = e.prefill(s);
        }
        let max_seq = m.cfg.max_seq;
        loop {
            let mut live: Vec<&mut SessionState> = sessions
                .iter_mut()
                .filter(|s| s.finish_reason(max_seq).is_none())
                .collect();
            if live.is_empty() {
                break;
            }
            e.decode(&mut live);
        }
        for (s, want) in sessions.iter().zip(&solo) {
            assert_eq!(&s.generated, want, "request {}", s.request.id);
        }
    }

    #[test]
    fn temperature_sampling_is_per_session_deterministic() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let mut t = synthetic_trace(&m.cfg, &TraceParams::light(2), 8);
        for r in &mut t.requests {
            r.sampling = Sampling::Temperature(0.8);
        }
        let solo: Vec<Vec<usize>> = t.requests.iter().map(|r| e.solo_run(r)).collect();
        assert_eq!(solo[0], e.solo_run(&t.requests[0]));
        // Batched pair must reproduce both solo streams: the RNGs are
        // per-session, so co-scheduling cannot perturb the draws.
        let mut a = e.start(t.requests[0].clone());
        let mut b = e.start(t.requests[1].clone());
        let _ = e.prefill(&mut a);
        let _ = e.prefill(&mut b);
        let max_seq = m.cfg.max_seq;
        while a.finish_reason(max_seq).is_none() && b.finish_reason(max_seq).is_none() {
            e.decode(&mut [&mut a, &mut b]);
        }
        for s in [&mut a, &mut b] {
            while s.finish_reason(max_seq).is_none() {
                e.decode(&mut [s]);
            }
        }
        assert_eq!(a.generated, solo[0]);
        assert_eq!(b.generated, solo[1]);
    }

    #[test]
    fn eviction_fires_when_cache_fills() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        // A request whose budget cannot fit: prompt 30 + 20 new > max_seq 40.
        // (Built by hand — synthetic_trace refuses to generate these.)
        let r = Request {
            id: 0,
            arrival: 0,
            prompt: (0..30).map(|i| i % m.cfg.vocab).collect(),
            max_new: 20,
            sampling: Sampling::Greedy,
            seed: 1,
        };
        let mut s = e.start(r.clone());
        let _ = e.prefill(&mut s);
        while s.finish_reason(m.cfg.max_seq).is_none() {
            e.decode(&mut [&mut s]);
        }
        assert_eq!(
            s.finish_reason(m.cfg.max_seq),
            Some(FinishReason::CacheFull)
        );
        // 30 prompt slots + 10 decodes fill the 40-slot cache; prefill plus
        // those decodes emitted 11 of the 20 budgeted tokens.
        assert_eq!(s.generated.len(), 11);
        assert_eq!(s.generated, e.solo_run(&r));
    }

    #[test]
    #[should_panic(expected = "re-prefilled")]
    fn double_prefill_panics() {
        let m = engine_model();
        let e = BatchEngine::new(&m, Backend::Exact);
        let t = synthetic_trace(&m.cfg, &TraceParams::light(1), 5);
        let mut s = e.start(t.requests[0].clone());
        let _ = e.prefill(&mut s);
        let _ = e.prefill(&mut s);
    }
}
