#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # figlut-serve — deterministic continuous-batching LLM serving
//!
//! The paper's pitch is LLM *serving*: single-sequence decode is DRAM-bound
//! and LUT-GEMM amortizes weight traffic across the sequences in flight.
//! This crate closes that loop in software: a request-level serving
//! subsystem that batches live sessions into single steps over the shared
//! (packed) weights, scheduled on a deterministic virtual clock so every
//! throughput and latency number is bit-reproducible. Since the
//! batch-blocked `figlut-exec` kernels landed, the host backend *actually*
//! amortizes the weights a batched step touches: one `decode_batch` step
//! streams each layer's packed planes once for every live session (each
//! decoded weight key is read for all batch columns before the next word
//! loads) through the layer's cached `ExecPlan` — no per-token window
//! recomputation, no per-token allocation — instead of paying a full
//! weight sweep per session (`repro ext-batch-scaling` measures the win;
//! the energy model and the kernels now batch the same way).
//!
//! | Module | Contents |
//! |---|---|
//! | [`request`] | [`Request`], [`Sampling`], seeded arrival traces ([`synthetic_trace`]) and the [`Scenario`] library (bursty on-off, heavy-tail, flash-crowd) |
//! | [`engine`] | [`BatchEngine`]: fused mixed steps (decode rows + prefill chunks in one pass) over one shared model, [`solo_run`](BatchEngine::solo_run) reference |
//! | [`scheduler`] | [`serve`]: admission, mixed prefill/decode steps, [`Policy`] × `max_batch` × [`ServeConfig::prefill_chunk`]; paged KV ([`ServeConfig::block_size`] × [`ServeConfig::pool_blocks`]) with shared prefixes and preempt/restore ([`serve_with_hooks`]); resilience — [`AdmissionPolicy`] shedding, deterministic [`FaultPlan`] injection, crash-consistent [`Checkpoint`]/[`resume`] (DESIGN.md §10) |
//! | [`metrics`] | [`ServeReport`]: tokens/s, TTFT (with per-session [`TtftSplit`] decomposition), full latency [`Dist`]ributions, [`Slo`] [`Goodput`], inter-token stalls, occupancy, [`PagingStats`], phase-split `figlut-sim` energy per token |
//!
//! **The correctness commitment** is the repo's signature move applied at
//! the serving layer: for any trace, policy, batch limit, and thread
//! count, every session's emitted token stream is **bit-identical** to
//! running that session alone at batch 1. It holds because every
//! batch-level operation is per-row independent — the GEMM backends
//! compute output rows in a fixed per-row order (`figlut-exec`'s property
//! suite pins this), and attention/normalization/sampling never cross
//! session rows — so scheduling decides *when* tokens appear, never
//! *which* tokens. The property tests in `tests/` and the
//! `repro ext-serving` experiment assert it before reporting any rate.
//!
//! ```
//! use figlut_model::{Backend, ModelConfig, Transformer};
//! use figlut_serve::{serve, BatchEngine, Policy, ServeConfig, TraceParams};
//!
//! let model = Transformer::teacher(ModelConfig::tiny(), 7);
//! let trace = figlut_serve::synthetic_trace(&model.cfg, &TraceParams::light(4), 42);
//! let engine = BatchEngine::new(&model, Backend::Exact);
//! let report = serve(&engine, &trace, &ServeConfig::new(4, Policy::PrefillPriority));
//! assert_eq!(report.requests.len(), 4);
//! for r in &report.requests {
//!     let solo = engine.solo_run(&trace.requests[r.id]);
//!     assert_eq!(r.generated, solo); // batch-invariant tokens
//! }
//! ```

pub mod engine;
pub mod metrics;
pub mod request;
pub mod scheduler;

pub use engine::{BatchEngine, FinishReason, SessionState};
pub use metrics::{
    Dist, Goodput, PagingStats, RequestMetrics, ResilienceStats, ServeDists, ServeReport, Slo,
    StepKind, StepRecord, TtftSplit,
};
pub use request::{
    bursty_trace, flash_crowd_trace, heavy_tail_trace, synthetic_trace, BurstyParams,
    FlashCrowdParams, HeavyTailParams, Request, Sampling, Scenario, Trace, TraceParams,
};
pub use scheduler::{
    resume, serve, serve_with_hooks, AdmissionPolicy, Checkpoint, CheckpointHook, FaultPlan,
    Policy, ServeConfig, ServeHooks,
};
