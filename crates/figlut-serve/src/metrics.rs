//! Serving metrics: throughput, goodput, TTFT decomposition, latency
//! distributions, occupancy, and cost-model pricing of the served trace.
//!
//! All times are virtual-clock ticks (see [`crate::scheduler`]), so every
//! number here is deterministic. [`ServeReport::workload`] re-expresses the
//! *exact* step sequence the scheduler executed as a `figlut-sim`
//! [`Workload`] at a real OPT shape, which turns a served trace into
//! energy-per-token on the modeled accelerator — the paper's
//! efficiency-under-serving story closed end to end.
//!
//! Beyond scalar aggregates, [`ServeReport::distributions`] materializes
//! TTFT, end-to-end latency, inter-token stalls, and queue wait as full
//! [`Dist`]ributions (exact sorted views paired with deterministic
//! [`Hist`] streaming histograms, DESIGN.md §9), [`RequestMetrics::ttft_split`]
//! decomposes each session's TTFT into queue-wait / prefill / first-sample
//! shares that reconcile tick-exactly against the step sequence, and
//! [`ServeReport::goodput`] counts the tokens that met a configurable
//! TTFT + stall [`Slo`] — the number overload hides when only mean
//! throughput is reported.

use crate::engine::FinishReason;
use figlut_model::workload::{decode_workload, prefill_workload};
use figlut_model::OptConfig;
use figlut_sim::engine::evaluate;
use figlut_sim::mpu::EngineSpec;
use figlut_sim::tech::Tech;
use figlut_sim::Workload;
use figlut_trace::fmt::{f3, Table};
use figlut_trace::Hist;
use std::collections::BTreeMap;

/// What a step did (derived from a [`StepRecord`]'s row counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// Only prompt rows: a (possibly chunked) prefill with no running
    /// decodes.
    Prefill,
    /// Only decode rows: one batched decode over every running session.
    Decode,
    /// A fused step carrying both running decode rows and a prefill chunk.
    Mixed,
}

impl StepKind {
    /// Short display name (also the trace span name for the step).
    pub fn name(&self) -> &'static str {
        match self {
            StepKind::Prefill => "Prefill",
            StepKind::Decode => "Decode",
            StepKind::Mixed => "Mixed",
        }
    }
}

/// One executed scheduler step: a single fused forward pass whose
/// token-rows are split by phase, because the two phases price differently
/// ([`ServeReport::workload`]) even though they share the GEMM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// Prompt token-rows processed (0 = no prefill part this step).
    pub prefill_rows: usize,
    /// KV-cache position at which the prefill chunk starts (0 for a
    /// whole-prompt prefill; later chunks of a chunked prefill start
    /// deeper, which matters to the quadratic attention pricing).
    pub prefill_pos: usize,
    /// Decode token-rows processed (the running batch; 0 = prefill-only).
    pub decode_rows: usize,
    /// KV positions moved between pool and host by preemption swaps since
    /// the previous step (swap-outs and swap-ins both count — each is one
    /// full copy of a session's K/V rows). 0 everywhere when paging is off
    /// or no preemption fired, which is what keeps a preemption-free paged
    /// trace priced byte-identically to the contiguous baseline.
    pub swapped_rows: usize,
    /// Virtual-clock cost charged.
    pub cost: u64,
}

impl StepRecord {
    /// Total token-rows the step's fused GEMMs processed.
    pub fn rows(&self) -> usize {
        self.prefill_rows + self.decode_rows
    }

    /// Classify the step by which phases contributed rows.
    ///
    /// The scheduler never emits a row-less record, so a `(0, 0)` record is
    /// a caller bug: debug builds panic on it, release builds classify it
    /// as [`StepKind::Decode`] (the choice that prices to zero everywhere).
    ///
    /// ```should_panic
    /// use figlut_serve::StepRecord;
    ///
    /// let bogus = StepRecord {
    ///     prefill_rows: 0,
    ///     prefill_pos: 0,
    ///     decode_rows: 0,
    ///     swapped_rows: 0,
    ///     cost: 1,
    /// };
    /// bogus.kind(); // debug builds: "step record with no rows"
    /// ```
    pub fn kind(&self) -> StepKind {
        debug_assert!(self.rows() > 0, "step record with no rows");
        match (self.prefill_rows > 0, self.decode_rows > 0) {
            (true, false) => StepKind::Prefill,
            (true, true) => StepKind::Mixed,
            _ => StepKind::Decode,
        }
    }
}

/// Per-request outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestMetrics {
    /// Request id.
    pub id: usize,
    /// Arrival tick.
    pub arrival: u64,
    /// Tick at which the scheduler admitted the request out of the pending
    /// queue (its prefill began). `admitted - arrival` is pure queueing
    /// delay; `first_token - admitted` is the compute side of TTFT.
    pub admitted: u64,
    /// Tick at which the first token was emitted (end of prefill).
    pub first_token: u64,
    /// Tick at which the session finished.
    pub finish: u64,
    /// Prompt length in tokens — the row count the session's prefill
    /// charged the virtual clock, and the prefill share of
    /// [`RequestMetrics::ttft_split`].
    pub prompt_len: usize,
    /// Tokens emitted.
    pub tokens: usize,
    /// Why the session ended.
    pub reason: FinishReason,
    /// The emitted token stream (the batch-invariance artifact).
    pub generated: Vec<usize>,
    /// Virtual-clock tick at which each token of `generated` was emitted
    /// (`token_ticks[0] == first_token`). Consecutive differences are the
    /// session's inter-token stalls — the per-token cadence that
    /// head-of-line blocking by long prefills ruins.
    pub token_ticks: Vec<u64>,
}

impl RequestMetrics {
    /// Time to first token, in ticks.
    pub fn ttft(&self) -> u64 {
        self.first_token - self.arrival
    }

    /// End-to-end latency, in ticks.
    pub fn latency(&self) -> u64 {
        self.finish - self.arrival
    }

    /// Ticks spent waiting in the pending queue before admission — the
    /// scheduling share of [`RequestMetrics::ttft`], with the prefill
    /// compute share (`first_token - admitted`) split out.
    pub fn queue_wait(&self) -> u64 {
        self.admitted - self.arrival
    }

    /// Gaps between consecutive emitted tokens, in ticks (empty for a
    /// single-token session).
    pub fn inter_token_stalls(&self) -> impl Iterator<Item = u64> + '_ {
        self.token_ticks.windows(2).map(|w| w[1] - w[0])
    }

    /// Decompose this session's TTFT into where the ticks went (all three
    /// shares sum back to [`RequestMetrics::ttft`]):
    ///
    /// * **queue** — `admitted − arrival`: pure scheduling delay before the
    ///   prefill began.
    /// * **prefill** — `prompt_len`: the session's own prompt rows, each of
    ///   which costs exactly one tick under the virtual-clock cost model.
    /// * **sample** — the remainder of `first_token − admitted`: step
    ///   overheads plus *foreign* rows (co-scheduled decode batches in the
    ///   fused chunked path) the session's prefill steps carried.
    ///
    /// This split reconciles tick-exactly against the step sequence: the
    /// scheduler runs exactly one prefill at a time and a session's prefill
    /// steps run consecutively from its admission, so the steps ending in
    /// `(admitted, first_token]` cost exactly `first_token − admitted`
    /// ticks and carry exactly `prompt_len` prefill rows (pinned by the
    /// trace-reconciliation suite).
    pub fn ttft_split(&self) -> TtftSplit {
        let compute = self.first_token - self.admitted;
        TtftSplit {
            queue: self.queue_wait(),
            prefill: (self.prompt_len as u64).min(compute),
            sample: compute.saturating_sub(self.prompt_len as u64),
        }
    }
}

/// Where a session's TTFT ticks went (see [`RequestMetrics::ttft_split`]).
/// `queue + prefill + sample == ttft`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TtftSplit {
    /// Ticks queued before admission.
    pub queue: u64,
    /// Ticks charged for the session's own prompt rows (= prompt length).
    pub prefill: u64,
    /// Ticks of step overhead and co-scheduled foreign rows between
    /// admission and the first token.
    pub sample: u64,
}

/// A latency distribution: the exact sorted sample paired with a
/// deterministic streaming [`Hist`]ogram over the same values.
///
/// The sorted view answers exact nearest-rank percentiles (sorted **once**
/// at construction — the fix for `Display` re-sorting per percentile); the
/// histogram is the mergeable, fixed-boundary form `repro analyze` renders
/// and cross-run tooling can fold without ever changing a quantile
/// (DESIGN.md §9).
#[derive(Clone, Debug, PartialEq)]
pub struct Dist {
    sorted: Vec<u64>,
    hist: Hist,
}

impl Dist {
    /// Build from an unsorted sample (sorts once, feeds the histogram).
    pub fn from_values(mut values: Vec<u64>) -> Self {
        values.sort_unstable();
        let mut hist = Hist::new();
        for &v in &values {
            hist.record(v);
        }
        Dist {
            sorted: values,
            hist,
        }
    }

    /// Exact nearest-rank percentile (`p` in `(0, 100]`); empty sample → 0,
    /// singleton → that element at every `p`. Same edge behavior as the
    /// report-level percentiles (pinned by `percentile_edge_behavior`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
        if self.sorted.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.saturating_sub(1)]
    }

    /// Number of recorded values.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Smallest value (0 when empty).
    pub fn min(&self) -> u64 {
        self.sorted.first().copied().unwrap_or(0)
    }

    /// Largest value (0 when empty).
    pub fn max(&self) -> u64 {
        self.sorted.last().copied().unwrap_or(0)
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().map(|&v| v as f64).sum::<f64>() / self.sorted.len() as f64
    }

    /// The streaming-histogram form of the same sample.
    pub fn hist(&self) -> &Hist {
        &self.hist
    }

    /// The sorted sample itself.
    pub fn values(&self) -> &[u64] {
        &self.sorted
    }
}

/// The four serving latency distributions, each computed exactly once from
/// a [`ServeReport`] (see [`ServeReport::distributions`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ServeDists {
    /// Time to first token, per request.
    pub ttft: Dist,
    /// End-to-end latency, per request.
    pub latency: Dist,
    /// Inter-token stalls, across all requests.
    pub stall: Dist,
    /// Pre-admission queue wait, per request.
    pub queue_wait: Dist,
}

/// A per-request service-level objective over the virtual clock: the
/// request meets the SLO iff its TTFT is at most `ttft` ticks **and**
/// every inter-token stall is at most `stall` ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slo {
    /// Maximum acceptable time to first token, in ticks.
    pub ttft: u64,
    /// Maximum acceptable inter-token stall, in ticks.
    pub stall: u64,
}

impl Default for Slo {
    /// The display default (`ttft: 50, stall: 25`), sized for the light
    /// traces the repo's quickstarts serve so the summary table's goodput
    /// row is meaningful out of the box; experiments pass explicit SLOs.
    fn default() -> Self {
        Slo {
            ttft: 50,
            stall: 25,
        }
    }
}

/// Tokens and requests that met an [`Slo`], reported beside raw
/// throughput (see [`ServeReport::goodput`]). Under overload goodput
/// diverges from throughput: the scheduler still emits tokens at full
/// tilt, but ever fewer of them belong to sessions whose latency contract
/// held — the `ext-overload` experiment's headline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Goodput {
    /// Requests whose TTFT and every stall met the SLO.
    pub met_requests: usize,
    /// Tokens emitted by those requests.
    pub met_tokens: usize,
    /// SLO-meeting tokens per 1000 virtual ticks — directly comparable to
    /// [`ServeReport::tokens_per_kilotick`].
    pub tokens_per_kilotick: f64,
}

/// Nearest-rank percentile (`p` in `(0, 100]`) of `values`.
///
/// **Edge behavior, relied on by callers:** an empty sample returns 0 —
/// not an error — so report-level percentiles over quantities that can
/// legitimately be absent (inter-token stalls of single-token sessions,
/// queue waits of an empty run) degrade to 0 instead of panicking. A
/// single-element sample returns that element at every `p`.
///
/// # Panics
///
/// Panics if `p` is out of range.
fn percentile(mut values: Vec<u64>, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
    values[rank.saturating_sub(1)]
}

/// Paged-KV accounting for one serving run (present only when
/// [`crate::ServeConfig::block_size`] was set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagingStats {
    /// Positions per block.
    pub block_size: usize,
    /// The pool's live-block cap (`None` = unbounded).
    pub pool_blocks: Option<usize>,
    /// High-water mark of live pool blocks over the run — the paged
    /// resident-KV footprint (multiply by `bytes_per_block`).
    pub peak_live_blocks: usize,
    /// Live blocks after the last session finished and the prefix registry
    /// was cleared. Anything nonzero is a refcount leak; the property
    /// suite gates this at 0.
    pub final_live_blocks: usize,
    /// Host bytes of one block's K+V storage.
    pub bytes_per_block: usize,
    /// Preemption swap-outs executed.
    pub swaps_out: usize,
    /// Preemption swap-ins (restores) executed.
    pub swaps_in: usize,
    /// Total KV positions copied by swaps, out and in (the sum of the
    /// per-step [`StepRecord::swapped_rows`]).
    pub swapped_rows: usize,
    /// Prompt positions admitted sessions adopted from the shared-prefix
    /// registry instead of storing privately.
    pub shared_rows: usize,
}

/// Fault, recovery, and admission-control activity over one serving run
/// (counted locally by the scheduler, so the numbers survive even with
/// tracing off). All-zero — the `Default` — on a quiet run with
/// [`crate::AdmissionPolicy::Unbounded`] and no fault plan, which is what
/// keeps pre-resilience reports byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Scheduled steps abandoned by injected transient failures and
    /// retried (each charged `step_overhead` ticks).
    pub step_retries: usize,
    /// Restore attempts abandoned (injected swap-in failures plus
    /// detected-corruption retries) and re-queued.
    pub swap_in_retries: usize,
    /// KV corruptions detected by the block checksum pass during restore.
    pub checksum_faults: usize,
    /// Injected pool-exhaustion spikes (each preempted one session).
    pub pool_spikes: usize,
    /// Requests shed from the pending queue by the admission policy.
    pub shed_requests: usize,
    /// Checkpoints captured by the [`crate::CheckpointHook`].
    pub checkpoints: usize,
}

/// Everything a serving run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Per-request outcomes, sorted by request id.
    pub requests: Vec<RequestMetrics>,
    /// Every executed step, in order.
    pub steps: Vec<StepRecord>,
    /// Final virtual-clock value.
    pub ticks: u64,
    /// The scheduler's batch capacity (for occupancy).
    pub max_batch: usize,
    /// High-water mark of logically cached KV positions across all
    /// resident sessions (swapped-out sessions excluded), sampled after
    /// every step. Times `2 × layers × d_model × 8` bytes this is the
    /// resident-KV footprint a *contiguous* cache needs — the baseline the
    /// `ext-paged-kv` experiment compares block-pool residency against.
    pub peak_kv_rows: usize,
    /// Paged-KV accounting, when paging was on.
    pub paging: Option<PagingStats>,
    /// Fault, recovery, and admission-control activity (all zero on a
    /// quiet, unbounded-admission run).
    pub resilience: ResilienceStats,
}

impl ServeReport {
    /// Total tokens emitted across all requests.
    pub fn total_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.tokens).sum()
    }

    /// Serving throughput: tokens per 1000 virtual ticks.
    pub fn tokens_per_kilotick(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.total_tokens() as f64 * 1000.0 / self.ticks as f64
    }

    /// Mean time-to-first-token, in ticks.
    pub fn mean_ttft(&self) -> f64 {
        let n = self.requests.len();
        if n == 0 {
            return 0.0;
        }
        self.requests.iter().map(|r| r.ttft() as f64).sum::<f64>() / n as f64
    }

    /// Nearest-rank latency percentile (`p` in `(0, 100]`), in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or no request finished.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        assert!(!self.requests.is_empty(), "no finished requests");
        percentile(
            self.requests.iter().map(RequestMetrics::latency).collect(),
            p,
        )
    }

    /// Number of steps that advanced at least one decode row.
    pub fn decode_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.decode_rows > 0).count()
    }

    /// Mean decode-batch occupancy in `(0, 1]`: decoded rows over
    /// `decode_steps × max_batch`. 1.0 means every decode-carrying step ran
    /// a full batch.
    pub fn mean_decode_occupancy(&self) -> f64 {
        let steps = self.decode_steps();
        if steps == 0 {
            return 0.0;
        }
        let rows: usize = self.steps.iter().map(|s| s.decode_rows).sum();
        rows as f64 / (steps * self.max_batch) as f64
    }

    /// Every inter-token stall (gap between consecutive emitted tokens of
    /// one session), across all requests, in ticks.
    pub fn inter_token_stalls(&self) -> Vec<u64> {
        self.requests
            .iter()
            .flat_map(RequestMetrics::inter_token_stalls)
            .collect()
    }

    /// The worst inter-token stall any session experienced, in ticks (0 if
    /// no session emitted a second token). This is the number chunked
    /// prefill bounds: with a chunk budget `c` every step costs at most
    /// `step_overhead + c + max_batch` ticks, so no running session ever
    /// waits a whole foreign prompt length for its next token.
    pub fn max_inter_token_stall(&self) -> u64 {
        self.inter_token_stalls().into_iter().max().unwrap_or(0)
    }

    /// Nearest-rank percentile of the inter-token stalls (`p` in
    /// `(0, 100]`), in ticks.
    ///
    /// Single-token sessions contribute no stalls (a session must emit a
    /// second token to have an inter-token gap), so a run of only
    /// single-token sessions — or an empty run — returns 0 at every `p`
    /// rather than panicking. Pinned by the `percentile_edge_behavior`
    /// test.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn stall_percentile(&self, p: f64) -> u64 {
        percentile(self.inter_token_stalls(), p)
    }

    /// Mean ticks requests spent queued before admission.
    pub fn mean_queue_wait(&self) -> f64 {
        let n = self.requests.len();
        if n == 0 {
            return 0.0;
        }
        self.requests
            .iter()
            .map(|r| r.queue_wait() as f64)
            .sum::<f64>()
            / n as f64
    }

    /// Materialize the report's four latency distributions — TTFT,
    /// end-to-end latency, inter-token stalls, queue wait — each sorted
    /// and histogrammed exactly once. Callers needing several percentiles
    /// (the `Display` impl, `repro analyze`, experiments) build this once
    /// instead of re-sorting per percentile call.
    pub fn distributions(&self) -> ServeDists {
        ServeDists {
            ttft: Dist::from_values(self.requests.iter().map(RequestMetrics::ttft).collect()),
            latency: Dist::from_values(self.requests.iter().map(RequestMetrics::latency).collect()),
            stall: Dist::from_values(self.inter_token_stalls()),
            queue_wait: Dist::from_values(
                self.requests
                    .iter()
                    .map(RequestMetrics::queue_wait)
                    .collect(),
            ),
        }
    }

    /// Goodput under `slo`: the tokens belonging to requests whose TTFT
    /// and every inter-token stall met the objective, as a rate
    /// comparable to [`ServeReport::tokens_per_kilotick`]. Raw throughput
    /// counts every emitted token; goodput counts only the ones a client
    /// holding this latency contract would accept. Shed requests
    /// ([`FinishReason::Shed`]) are excluded outright — they emitted
    /// nothing and met no contract, and their synthetic `first_token ==
    /// finish` stamps must not leak into the met set.
    pub fn goodput(&self, slo: &Slo) -> Goodput {
        let mut met_requests = 0;
        let mut met_tokens = 0;
        for r in &self.requests {
            if r.reason == FinishReason::Shed {
                continue;
            }
            if r.ttft() <= slo.ttft && r.inter_token_stalls().all(|s| s <= slo.stall) {
                met_requests += 1;
                met_tokens += r.tokens;
            }
        }
        let tokens_per_kilotick = if self.ticks == 0 {
            0.0
        } else {
            met_tokens as f64 * 1000.0 / self.ticks as f64
        };
        Goodput {
            met_requests,
            met_tokens,
            tokens_per_kilotick,
        }
    }

    /// The pending-queue depth over the run as `(tick, depth)` change
    /// points: +1 at each request's arrival, −1 at its admission, events
    /// at the same tick coalesced (admissions applied after arrivals, so
    /// the reported depth is the end-of-tick value). The scheduler admits
    /// every request exactly once, so the timeline always returns to 0.
    pub fn queue_depth_timeline(&self) -> Vec<(u64, usize)> {
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(2 * self.requests.len());
        for r in &self.requests {
            events.push((r.arrival, 1));
            events.push((r.admitted, -1));
        }
        // Sort decrements after increments within a tick: a same-tick
        // arrive+admit pair must not report a negative intermediate.
        events.sort_by_key(|&(t, d)| (t, -d));
        let mut out: Vec<(u64, usize)> = Vec::new();
        let mut depth = 0i64;
        for (t, d) in events {
            depth += d;
            debug_assert!(depth >= 0, "queue depth went negative at tick {t}");
            match out.last_mut() {
                Some(last) if last.0 == t => last.1 = depth as usize,
                _ => out.push((t, depth as usize)),
            }
        }
        out
    }

    /// Re-express the executed step sequence as the workload it would be at
    /// a real OPT shape, phase-aware:
    ///
    /// * **GEMMs** run fused — a step's prefill chunk and decode batch ride
    ///   the same weight traversal — so each step contributes one
    ///   [`decode_workload`]-shaped pass at its *combined* row count (steps
    ///   with equal totals merge into the shapes' `repeat`).
    /// * **Non-GEMM flops** split by phase: decode rows carry
    ///   [`decode_workload`]'s linear attention bookkeeping, while a
    ///   prefill chunk spanning positions `[pos, pos + len)` is priced as
    ///   the *increment* of [`prefill_workload`]'s quadratic attention term
    ///   between those depths. The increments telescope, so any chunking of
    ///   a prompt prices exactly like the whole-prompt prefill — chunked
    ///   prefill moves stalls, not energy.
    /// * **Preemption swaps** are honest, not free: every KV position a
    ///   swap moved ([`StepRecord::swapped_rows`]) is priced as non-GEMM
    ///   traffic at one flop per element copied (`2 × layers × d_model`
    ///   elements per position — K and V). A trace with zero preemptions
    ///   therefore prices byte-identically to the same trace on the
    ///   contiguous baseline.
    pub fn workload(&self, opt: &OptConfig) -> Workload {
        let prefill_nongemm_upto = |len: usize| -> f64 {
            if len == 0 {
                0.0
            } else {
                prefill_workload(opt, 1, len).nongemm_flops
            }
        };
        let mut by_rows: BTreeMap<usize, f64> = BTreeMap::new();
        let mut nongemm_flops = 0.0;
        for s in &self.steps {
            *by_rows.entry(s.rows()).or_insert(0.0) += 1.0;
            if s.decode_rows > 0 {
                nongemm_flops += decode_workload(opt, s.decode_rows).nongemm_flops;
            }
            if s.prefill_rows > 0 {
                nongemm_flops += prefill_nongemm_upto(s.prefill_pos + s.prefill_rows)
                    - prefill_nongemm_upto(s.prefill_pos);
            }
            if s.swapped_rows > 0 {
                nongemm_flops += s.swapped_rows as f64 * 2.0 * (opt.layers * opt.d_model) as f64;
            }
        }
        let mut gemms = Vec::with_capacity(3 * by_rows.len());
        for (&rows, &count) in &by_rows {
            let mut pass = decode_workload(opt, rows);
            for g in &mut pass.gemms {
                g.repeat *= count;
            }
            gemms.extend(pass.gemms);
        }
        Workload {
            gemms,
            nongemm_flops,
        }
    }

    /// Price the served trace on the cost model: energy per emitted token
    /// (pJ) for an accelerator `spec` at technology `tech` and average
    /// weight precision `weight_bits`, with the model scaled up to the real
    /// OPT shape `opt`.
    ///
    /// # Panics
    ///
    /// Panics if no tokens were emitted.
    pub fn energy_per_token_pj(
        &self,
        tech: &Tech,
        spec: &EngineSpec,
        opt: &OptConfig,
        weight_bits: f64,
    ) -> f64 {
        let tokens = self.total_tokens();
        assert!(tokens > 0, "no tokens served");
        let report = evaluate(tech, spec, &self.workload(opt), weight_bits);
        report.energy.total_pj() / tokens as f64
    }
}

impl std::fmt::Display for ServeReport {
    /// A human-readable summary table of the run (rendered through the
    /// shared `figlut_trace::fmt` table engine, so `repro` prints reports
    /// and experiment tables in one visual idiom). All values are virtual-
    /// clock ticks; the table is stable enough to snapshot-test but not a
    /// machine interface — use the fields for that.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut by_kind = [0usize; 3];
        for s in &self.steps {
            by_kind[match s.kind() {
                StepKind::Prefill => 0,
                StepKind::Decode => 1,
                StepKind::Mixed => 2,
            }] += 1;
        }
        // One pass over the report: every percentile below reads the same
        // four distributions, sorted exactly once.
        let dists = self.distributions();
        let slo = Slo::default();
        let goodput = self.goodput(&slo);
        let mut t = Table::new("serving summary", &["metric", "value"]);
        let mut row = |k: &str, v: String| t.row(vec![k.to_string(), v]);
        row("requests", self.requests.len().to_string());
        row("tokens", self.total_tokens().to_string());
        row("ticks", self.ticks.to_string());
        row("tokens/kilotick", f3(self.tokens_per_kilotick()));
        row(
            &format!("goodput tok/ktick (slo {}/{})", slo.ttft, slo.stall),
            f3(goodput.tokens_per_kilotick),
        );
        row(
            "slo-met requests",
            format!("{}/{}", goodput.met_requests, self.requests.len()),
        );
        row("mean ttft (ticks)", f3(dists.ttft.mean()));
        row("mean queue wait (ticks)", f3(dists.queue_wait.mean()));
        row(
            "queue wait p50/p99 (ticks)",
            format!(
                "{}/{}",
                dists.queue_wait.percentile(50.0),
                dists.queue_wait.percentile(99.0)
            ),
        );
        if !self.requests.is_empty() {
            row(
                "p50 latency (ticks)",
                dists.latency.percentile(50.0).to_string(),
            );
            row(
                "p99 latency (ticks)",
                dists.latency.percentile(99.0).to_string(),
            );
        }
        row(
            "stall p50/p99/max (ticks)",
            format!(
                "{}/{}/{}",
                dists.stall.percentile(50.0),
                dists.stall.percentile(99.0),
                dists.stall.max()
            ),
        );
        row("decode occupancy", f3(self.mean_decode_occupancy()));
        row(
            "steps (prefill/decode/mixed)",
            format!("{}/{}/{}", by_kind[0], by_kind[1], by_kind[2]),
        );
        row("peak kv rows", self.peak_kv_rows.to_string());
        if let Some(p) = &self.paging {
            row("peak live blocks", p.peak_live_blocks.to_string());
            row("swaps out/in", format!("{}/{}", p.swaps_out, p.swaps_in));
            row("swapped kv rows", p.swapped_rows.to_string());
            row("shared prefix rows", p.shared_rows.to_string());
        }
        let res = &self.resilience;
        if *res != ResilienceStats::default() {
            row("shed requests", res.shed_requests.to_string());
            row(
                "fault retries (step/swap-in/checksum)",
                format!(
                    "{}/{}/{}",
                    res.step_retries, res.swap_in_retries, res.checksum_faults
                ),
            );
            row(
                "pool spikes / checkpoints",
                format!("{}/{}", res.pool_spikes, res.checkpoints),
            );
        }
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_model::config::by_name;
    use figlut_num::fp::FpFormat;
    use figlut_sim::mpu::SimEngine;

    fn prefill_step(rows: usize, pos: usize, cost: u64) -> StepRecord {
        StepRecord {
            prefill_rows: rows,
            prefill_pos: pos,
            decode_rows: 0,
            swapped_rows: 0,
            cost,
        }
    }

    fn decode_step(rows: usize, cost: u64) -> StepRecord {
        StepRecord {
            prefill_rows: 0,
            prefill_pos: 0,
            decode_rows: rows,
            swapped_rows: 0,
            cost,
        }
    }

    fn demo_report() -> ServeReport {
        let m = |id, arrival, first: u64, finish: u64, tokens: usize| {
            // Emission ticks interpolated so the scheduler's invariants
            // hold: token_ticks[0] == first and token_ticks.last == finish.
            let span = (tokens as u64 - 1).max(1);
            RequestMetrics {
                id,
                arrival,
                admitted: arrival + 2,
                first_token: first,
                finish,
                prompt_len: 2,
                tokens,
                reason: FinishReason::Completed,
                generated: vec![1; tokens],
                token_ticks: (0..tokens as u64)
                    .map(|t| first + t * (finish - first) / span)
                    .collect(),
            }
        };
        ServeReport {
            requests: vec![m(0, 0, 5, 20, 4), m(1, 2, 9, 30, 5), m(2, 10, 16, 26, 3)],
            steps: vec![prefill_step(4, 0, 5), decode_step(2, 3), decode_step(3, 4)],
            ticks: 30,
            max_batch: 4,
            peak_kv_rows: 9,
            paging: None,
            resilience: ResilienceStats::default(),
        }
    }

    #[test]
    fn aggregates() {
        let r = demo_report();
        assert_eq!(r.total_tokens(), 12);
        assert_eq!(r.tokens_per_kilotick(), 400.0);
        assert_eq!(r.mean_ttft(), (5.0 + 7.0 + 6.0) / 3.0);
        assert_eq!(r.decode_steps(), 2);
        assert_eq!(r.mean_decode_occupancy(), 5.0 / 8.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let r = demo_report();
        // Latencies: 20, 28, 16 → sorted 16, 20, 28.
        assert_eq!(r.latency_percentile(50.0), 20);
        assert_eq!(r.latency_percentile(99.0), 28);
        assert_eq!(r.latency_percentile(1.0), 16);
    }

    #[test]
    fn workload_counts_all_rows() {
        let r = demo_report();
        let opt = by_name("OPT-1.3B").unwrap();
        let wl = r.workload(opt);
        // ops = 2 × gemm-params × total rows (4 + 2 + 3).
        let want = 2.0 * opt.gemm_params() * 9.0;
        assert!(
            (wl.ops() / want - 1.0).abs() < 1e-12,
            "{} vs {want}",
            wl.ops()
        );
    }

    #[test]
    fn energy_per_token_positive_and_batch_sensitive() {
        let opt = by_name("OPT-1.3B").unwrap();
        let tech = Tech::cmos28();
        let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
        let r = demo_report();
        let e = r.energy_per_token_pj(&tech, &spec, opt, 4.0);
        assert!(e > 0.0);
        // The same tokens served at batch 1 (each decode row its own step)
        // must cost more energy per token: weight traffic is re-paid.
        let mut solo = r.clone();
        solo.steps = vec![prefill_step(4, 0, 5)];
        solo.steps.extend((0..5).map(|_| decode_step(1, 2)));
        let e_solo = solo.energy_per_token_pj(&tech, &spec, opt, 4.0);
        assert!(
            e_solo > 1.5 * e,
            "batch-1 serving should be much costlier: {e_solo} vs {e}"
        );
    }

    #[test]
    fn step_records_classify_by_phase_rows() {
        assert_eq!(prefill_step(4, 0, 5).kind(), StepKind::Prefill);
        assert_eq!(decode_step(2, 3).kind(), StepKind::Decode);
        let mixed = StepRecord {
            prefill_rows: 8,
            prefill_pos: 16,
            decode_rows: 3,
            swapped_rows: 0,
            cost: 12,
        };
        assert_eq!(mixed.kind(), StepKind::Mixed);
        assert_eq!(mixed.rows(), 11);
    }

    #[test]
    fn prefill_rows_price_strictly_more_nongemm_than_decode_rows() {
        // The regression the StepKind-blind workload() had: a prefill of L
        // rows was priced as a decode batch of L, dropping the quadratic
        // attention term. Same rows, same GEMMs — strictly more non-GEMM
        // flops on the prefill side.
        let opt = by_name("OPT-1.3B").unwrap();
        let base = demo_report();
        let mut as_prefill = base.clone();
        as_prefill.steps = vec![prefill_step(32, 0, 33)];
        let mut as_decode = base;
        as_decode.steps = vec![decode_step(32, 33)];
        let wp = as_prefill.workload(opt);
        let wd = as_decode.workload(opt);
        assert!(
            (wp.ops() / wd.ops() - 1.0).abs() < 1e-12,
            "same rows must mean the same GEMM inventory"
        );
        assert!(
            wp.nongemm_flops > wd.nongemm_flops,
            "prefill attention is quadratic: {} !> {}",
            wp.nongemm_flops,
            wd.nongemm_flops
        );
        // And it must actually be the prefill_workload increment, not some
        // other constant: one whole-prompt chunk == prefill_workload.
        let want = figlut_model::workload::prefill_workload(opt, 1, 32).nongemm_flops;
        assert!((wp.nongemm_flops / want - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chunked_prefill_pricing_telescopes() {
        // Chunking a 32-token prompt must price (non-GEMM) exactly like the
        // whole-prompt prefill: the per-chunk quadratic increments sum to
        // the full quadratic term.
        let opt = by_name("OPT-1.3B").unwrap();
        let mut whole = demo_report();
        whole.steps = vec![prefill_step(32, 0, 33)];
        let mut chunked = whole.clone();
        chunked.steps = vec![
            prefill_step(8, 0, 9),
            prefill_step(8, 8, 9),
            prefill_step(16, 16, 17),
        ];
        let ww = whole.workload(opt);
        let wc = chunked.workload(opt);
        assert!(
            (wc.nongemm_flops / ww.nongemm_flops - 1.0).abs() < 1e-9,
            "chunking moved attention energy: {} vs {}",
            wc.nongemm_flops,
            ww.nongemm_flops
        );
    }

    #[test]
    fn mixed_steps_price_fused_gemms_and_split_nongemm() {
        // A mixed step's GEMMs run at the combined row count (one weight
        // traversal), while its non-GEMM work is the sum of the phases'.
        let opt = by_name("OPT-1.3B").unwrap();
        let mut mixed = demo_report();
        mixed.steps = vec![StepRecord {
            prefill_rows: 8,
            prefill_pos: 4,
            decode_rows: 3,
            swapped_rows: 0,
            cost: 12,
        }];
        let w = mixed.workload(opt);
        let want_gemm = 2.0 * opt.gemm_params() * 11.0;
        assert!((w.ops() / want_gemm - 1.0).abs() < 1e-12);
        let decode_part = decode_workload(opt, 3).nongemm_flops;
        let prefill_part =
            prefill_workload(opt, 1, 12).nongemm_flops - prefill_workload(opt, 1, 4).nongemm_flops;
        assert!((w.nongemm_flops / (decode_part + prefill_part) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_traffic_prices_as_nongemm_only() {
        // Preemption swaps move bytes, not GEMM work: a report differing
        // only in `swapped_rows` must price the same GEMM inventory plus
        // exactly one flop per copied K/V element.
        let opt = by_name("OPT-1.3B").unwrap();
        let base = demo_report();
        let mut swapped = base.clone();
        swapped.steps[1].swapped_rows = 12;
        let wb = base.workload(opt);
        let ws = swapped.workload(opt);
        assert!(
            (ws.ops() / wb.ops() - 1.0).abs() < 1e-12,
            "swaps must not change the GEMM inventory"
        );
        let delta = ws.nongemm_flops - wb.nongemm_flops;
        let want = 12.0 * 2.0 * (opt.layers * opt.d_model) as f64;
        assert!(
            (delta / want - 1.0).abs() < 1e-12,
            "swap traffic mispriced: {delta} vs {want}"
        );
        // And with zero swapped rows everywhere the workloads are
        // bit-identical — the telescoping guarantee the scheduler-level
        // test pins end to end.
        let zero = base.workload(opt);
        assert_eq!(zero.nongemm_flops.to_bits(), wb.nongemm_flops.to_bits());
    }

    #[test]
    fn stall_metrics_aggregate_token_gaps() {
        let mut r = demo_report();
        // Request 0: ticks 5,10,15,20 → gaps 5,5,5. Request 1: 9,14,19,24,30
        // → gaps 5,5,5,6. Request 2: 16,21,26 → gaps 5,5.
        assert_eq!(r.requests[1].token_ticks, vec![9, 14, 19, 24, 30]);
        assert_eq!(r.max_inter_token_stall(), 6);
        assert_eq!(r.stall_percentile(50.0), 5);
        // Inject a head-of-line blocking spike into request 2.
        r.requests[2].token_ticks = vec![16, 21, 62];
        assert_eq!(r.max_inter_token_stall(), 41);
        assert_eq!(r.stall_percentile(99.0), 41);
        assert_eq!(r.stall_percentile(50.0), 5);
        let single = RequestMetrics {
            id: 9,
            arrival: 0,
            admitted: 0,
            first_token: 3,
            finish: 3,
            prompt_len: 2,
            tokens: 1,
            reason: FinishReason::Completed,
            generated: vec![1],
            token_ticks: vec![3],
        };
        let lone = ServeReport {
            requests: vec![single],
            steps: vec![prefill_step(2, 0, 3)],
            ticks: 3,
            max_batch: 1,
            peak_kv_rows: 2,
            paging: None,
            resilience: ResilienceStats::default(),
        };
        assert_eq!(lone.max_inter_token_stall(), 0);
        assert_eq!(lone.stall_percentile(99.0), 0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        let _ = demo_report().latency_percentile(0.0);
    }

    #[test]
    fn percentile_edge_behavior() {
        // Empty sample → 0 at every p (not a panic): a report whose
        // sessions all emitted a single token has no inter-token stalls.
        let mut r = demo_report();
        for req in &mut r.requests {
            req.tokens = 1;
            req.generated.truncate(1);
            req.token_ticks.truncate(1);
        }
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(r.stall_percentile(p), 0, "p{p} of empty sample");
        }
        // Single-element sample → that element at every p.
        r.requests[0].tokens = 2;
        r.requests[0].generated.push(1);
        r.requests[0].token_ticks.push(12);
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(r.stall_percentile(p), 7, "p{p} of singleton sample");
        }
    }

    #[test]
    fn queue_wait_splits_ttft() {
        let r = demo_report();
        // demo requests are admitted 2 ticks after arrival.
        assert_eq!(r.requests[0].queue_wait(), 2);
        assert_eq!(r.mean_queue_wait(), 2.0);
        // queue wait + post-admission compute == TTFT, per request.
        for req in &r.requests {
            assert_eq!(
                req.queue_wait() + (req.first_token - req.admitted),
                req.ttft()
            );
        }
    }

    #[test]
    fn ttft_split_shares_sum_back() {
        let r = demo_report();
        // Request 0: arrival 0, admitted 2, first 5, prompt 2 →
        // queue 2, prefill 2, sample 1.
        let s = r.requests[0].ttft_split();
        assert_eq!(
            s,
            TtftSplit {
                queue: 2,
                prefill: 2,
                sample: 1
            }
        );
        for req in &r.requests {
            let s = req.ttft_split();
            assert_eq!(s.queue + s.prefill + s.sample, req.ttft(), "req {}", req.id);
        }
    }

    #[test]
    fn distributions_match_exact_percentiles() {
        let r = demo_report();
        let d = r.distributions();
        // The cached sorted views must agree with the one-shot percentile
        // path at every probe, and the histogram must hold the same count.
        for p in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(d.latency.percentile(p), r.latency_percentile(p), "p{p}");
            assert_eq!(d.stall.percentile(p), r.stall_percentile(p), "p{p}");
        }
        assert_eq!(d.ttft.count(), r.requests.len());
        assert_eq!(d.ttft.hist().count(), r.requests.len() as u64);
        assert_eq!(d.ttft.mean(), r.mean_ttft());
        assert_eq!(d.queue_wait.mean(), r.mean_queue_wait());
        assert_eq!(d.stall.max(), r.max_inter_token_stall());
        // Small tick values land in exact unit buckets, so the histogram
        // quantile agrees with the exact one on this report.
        assert_eq!(d.latency.hist().quantile(50.0), d.latency.percentile(50.0));
    }

    #[test]
    fn goodput_counts_only_slo_meeting_tokens() {
        let r = demo_report();
        // TTFTs 5/7/6, stalls ≤ 6 → everything meets a loose SLO.
        let all = r.goodput(&Slo {
            ttft: 10,
            stall: 10,
        });
        assert_eq!(all.met_requests, 3);
        assert_eq!(all.met_tokens, r.total_tokens());
        assert_eq!(all.tokens_per_kilotick, r.tokens_per_kilotick());
        // Tighten TTFT to 6: request 1 (ttft 7) falls out with its 5 tokens.
        let tight = r.goodput(&Slo { ttft: 6, stall: 10 });
        assert_eq!(tight.met_requests, 2);
        assert_eq!(tight.met_tokens, 7);
        assert!(tight.tokens_per_kilotick < all.tokens_per_kilotick);
        // A stall bound below 5 kills every multi-token session.
        let none = r.goodput(&Slo {
            ttft: 100,
            stall: 4,
        });
        assert_eq!(none.met_requests, 0);
        assert_eq!(none.tokens_per_kilotick, 0.0);
    }

    #[test]
    fn queue_depth_timeline_folds_arrivals_and_admissions() {
        let mut r = demo_report();
        // Arrivals at 0, 2, 10; admissions at 2, 4, 12. The same-tick
        // pair at 2 coalesces into one end-of-tick entry.
        assert_eq!(
            r.queue_depth_timeline(),
            vec![(0, 1), (2, 1), (4, 0), (10, 1), (12, 0)]
        );
        // Everything admitted instantly → depth spikes vanish by tick end.
        for req in &mut r.requests {
            req.admitted = req.arrival;
        }
        assert_eq!(r.queue_depth_timeline(), vec![(0, 0), (2, 0), (10, 0)]);
    }

    #[test]
    fn display_renders_summary_table() {
        let shown = demo_report().to_string();
        for needle in [
            "serving summary",
            "requests",
            "tokens/kilotick",
            "400.0",
            "mean queue wait (ticks)",
            "queue wait p50/p99 (ticks)",
            "goodput tok/ktick (slo 50/25)",
            "slo-met requests",
            "3/3",
            "stall p50/p99/max (ticks)",
            "steps (prefill/decode/mixed)",
            "1/2/0",
        ] {
            assert!(shown.contains(needle), "missing {needle:?} in:\n{shown}");
        }
        // Paging rows appear only when paging was on.
        assert!(!shown.contains("swaps out/in"));
        let mut paged = demo_report();
        paged.paging = Some(PagingStats {
            block_size: 16,
            pool_blocks: Some(8),
            peak_live_blocks: 6,
            final_live_blocks: 0,
            bytes_per_block: 4096,
            swaps_out: 2,
            swaps_in: 2,
            swapped_rows: 40,
            shared_rows: 12,
        });
        let shown = paged.to_string();
        assert!(shown.contains("swaps out/in"));
        assert!(shown.contains("2/2"));
    }
}
