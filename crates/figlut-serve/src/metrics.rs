//! Serving metrics: throughput, TTFT, latency percentiles, occupancy, and
//! cost-model pricing of the served trace.
//!
//! All times are virtual-clock ticks (see [`crate::scheduler`]), so every
//! number here is deterministic. [`ServeReport::workload`] re-expresses the
//! *exact* step sequence the scheduler executed as a `figlut-sim`
//! [`Workload`] at a real OPT shape, which turns a served trace into
//! energy-per-token on the modeled accelerator — the paper's
//! efficiency-under-serving story closed end to end.

use crate::engine::FinishReason;
use figlut_model::workload::decode_workload;
use figlut_model::OptConfig;
use figlut_sim::engine::evaluate;
use figlut_sim::mpu::EngineSpec;
use figlut_sim::tech::Tech;
use figlut_sim::Workload;
use std::collections::BTreeMap;

/// What a step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// One session's whole-prompt prefill.
    Prefill,
    /// One batched decode over every running session.
    Decode,
}

/// One executed scheduler step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// Step kind.
    pub kind: StepKind,
    /// Token-rows processed (prompt length for prefill, batch for decode).
    pub rows: usize,
    /// Virtual-clock cost charged.
    pub cost: u64,
}

/// Per-request outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestMetrics {
    /// Request id.
    pub id: usize,
    /// Arrival tick.
    pub arrival: u64,
    /// Tick at which the first token was emitted (end of prefill).
    pub first_token: u64,
    /// Tick at which the session finished.
    pub finish: u64,
    /// Tokens emitted.
    pub tokens: usize,
    /// Why the session ended.
    pub reason: FinishReason,
    /// The emitted token stream (the batch-invariance artifact).
    pub generated: Vec<usize>,
}

impl RequestMetrics {
    /// Time to first token, in ticks.
    pub fn ttft(&self) -> u64 {
        self.first_token - self.arrival
    }

    /// End-to-end latency, in ticks.
    pub fn latency(&self) -> u64 {
        self.finish - self.arrival
    }
}

/// Everything a serving run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Per-request outcomes, sorted by request id.
    pub requests: Vec<RequestMetrics>,
    /// Every executed step, in order.
    pub steps: Vec<StepRecord>,
    /// Final virtual-clock value.
    pub ticks: u64,
    /// The scheduler's batch capacity (for occupancy).
    pub max_batch: usize,
}

impl ServeReport {
    /// Total tokens emitted across all requests.
    pub fn total_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.tokens).sum()
    }

    /// Serving throughput: tokens per 1000 virtual ticks.
    pub fn tokens_per_kilotick(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.total_tokens() as f64 * 1000.0 / self.ticks as f64
    }

    /// Mean time-to-first-token, in ticks.
    pub fn mean_ttft(&self) -> f64 {
        let n = self.requests.len();
        if n == 0 {
            return 0.0;
        }
        self.requests.iter().map(|r| r.ttft() as f64).sum::<f64>() / n as f64
    }

    /// Nearest-rank latency percentile (`p` in `(0, 100]`), in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or no request finished.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
        assert!(!self.requests.is_empty(), "no finished requests");
        let mut lat: Vec<u64> = self.requests.iter().map(RequestMetrics::latency).collect();
        lat.sort_unstable();
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.saturating_sub(1)]
    }

    /// Number of decode steps executed.
    pub fn decode_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::Decode)
            .count()
    }

    /// Mean decode-batch occupancy in `(0, 1]`: decoded rows over
    /// `decode_steps × max_batch`. 1.0 means every decode ran a full batch.
    pub fn mean_decode_occupancy(&self) -> f64 {
        let steps = self.decode_steps();
        if steps == 0 {
            return 0.0;
        }
        let rows: usize = self
            .steps
            .iter()
            .filter(|s| s.kind == StepKind::Decode)
            .map(|s| s.rows)
            .sum();
        rows as f64 / (steps * self.max_batch) as f64
    }

    /// Re-express the executed step sequence as the GEMM workload it would
    /// be at a real OPT shape: every step with `r` token-rows is one
    /// [`figlut_model::workload::decode_workload`] pass at
    /// batch `r` (steps with equal `r` merge into the shapes' `repeat`), so
    /// the cost model prices serving with exactly the same per-pass
    /// inventory as every other experiment.
    pub fn workload(&self, opt: &OptConfig) -> Workload {
        let mut by_rows: BTreeMap<usize, f64> = BTreeMap::new();
        for s in &self.steps {
            *by_rows.entry(s.rows).or_insert(0.0) += 1.0;
        }
        let mut gemms = Vec::with_capacity(3 * by_rows.len());
        let mut nongemm_flops = 0.0;
        for (&rows, &count) in &by_rows {
            let mut pass = decode_workload(opt, rows);
            for g in &mut pass.gemms {
                g.repeat *= count;
            }
            gemms.extend(pass.gemms);
            nongemm_flops += pass.nongemm_flops * count;
        }
        Workload {
            gemms,
            nongemm_flops,
        }
    }

    /// Price the served trace on the cost model: energy per emitted token
    /// (pJ) for an accelerator `spec` at technology `tech` and average
    /// weight precision `weight_bits`, with the model scaled up to the real
    /// OPT shape `opt`.
    ///
    /// # Panics
    ///
    /// Panics if no tokens were emitted.
    pub fn energy_per_token_pj(
        &self,
        tech: &Tech,
        spec: &EngineSpec,
        opt: &OptConfig,
        weight_bits: f64,
    ) -> f64 {
        let tokens = self.total_tokens();
        assert!(tokens > 0, "no tokens served");
        let report = evaluate(tech, spec, &self.workload(opt), weight_bits);
        report.energy.total_pj() / tokens as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_model::config::by_name;
    use figlut_num::fp::FpFormat;
    use figlut_sim::mpu::SimEngine;

    fn demo_report() -> ServeReport {
        let m = |id, arrival, first, finish, tokens| RequestMetrics {
            id,
            arrival,
            first_token: first,
            finish,
            tokens,
            reason: FinishReason::Completed,
            generated: vec![1; tokens],
        };
        ServeReport {
            requests: vec![m(0, 0, 5, 20, 4), m(1, 2, 9, 30, 5), m(2, 10, 16, 26, 3)],
            steps: vec![
                StepRecord {
                    kind: StepKind::Prefill,
                    rows: 4,
                    cost: 5,
                },
                StepRecord {
                    kind: StepKind::Decode,
                    rows: 2,
                    cost: 3,
                },
                StepRecord {
                    kind: StepKind::Decode,
                    rows: 3,
                    cost: 4,
                },
            ],
            ticks: 30,
            max_batch: 4,
        }
    }

    #[test]
    fn aggregates() {
        let r = demo_report();
        assert_eq!(r.total_tokens(), 12);
        assert_eq!(r.tokens_per_kilotick(), 400.0);
        assert_eq!(r.mean_ttft(), (5.0 + 7.0 + 6.0) / 3.0);
        assert_eq!(r.decode_steps(), 2);
        assert_eq!(r.mean_decode_occupancy(), 5.0 / 8.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let r = demo_report();
        // Latencies: 20, 28, 16 → sorted 16, 20, 28.
        assert_eq!(r.latency_percentile(50.0), 20);
        assert_eq!(r.latency_percentile(99.0), 28);
        assert_eq!(r.latency_percentile(1.0), 16);
    }

    #[test]
    fn workload_counts_all_rows() {
        let r = demo_report();
        let opt = by_name("OPT-1.3B").unwrap();
        let wl = r.workload(opt);
        // ops = 2 × gemm-params × total rows (4 + 2 + 3).
        let want = 2.0 * opt.gemm_params() * 9.0;
        assert!(
            (wl.ops() / want - 1.0).abs() < 1e-12,
            "{} vs {want}",
            wl.ops()
        );
    }

    #[test]
    fn energy_per_token_positive_and_batch_sensitive() {
        let opt = by_name("OPT-1.3B").unwrap();
        let tech = Tech::cmos28();
        let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
        let r = demo_report();
        let e = r.energy_per_token_pj(&tech, &spec, opt, 4.0);
        assert!(e > 0.0);
        // The same tokens served at batch 1 (each decode row its own step)
        // must cost more energy per token: weight traffic is re-paid.
        let mut solo = r.clone();
        solo.steps = vec![
            StepRecord {
                kind: StepKind::Prefill,
                rows: 4,
                cost: 5,
            },
            StepRecord {
                kind: StepKind::Decode,
                rows: 1,
                cost: 2,
            },
            StepRecord {
                kind: StepKind::Decode,
                rows: 1,
                cost: 2,
            },
            StepRecord {
                kind: StepKind::Decode,
                rows: 1,
                cost: 2,
            },
            StepRecord {
                kind: StepKind::Decode,
                rows: 1,
                cost: 2,
            },
            StepRecord {
                kind: StepKind::Decode,
                rows: 1,
                cost: 2,
            },
        ];
        let e_solo = solo.energy_per_token_pj(&tech, &spec, opt, 4.0);
        assert!(
            e_solo > 1.5 * e,
            "batch-1 serving should be much costlier: {e_solo} vs {e}"
        );
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        let _ = demo_report().latency_percentile(0.0);
    }
}
