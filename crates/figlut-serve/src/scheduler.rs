//! Admission, prefill/decode interleaving, and batch assembly on a
//! deterministic virtual clock.
//!
//! The serving loop is an event loop over *steps*, and advances the
//! virtual clock by a deterministic cost per step
//! (`step_overhead + token-rows processed`) — a linear stand-in for the
//! row-proportional GEMM time of both the packed host kernels and the
//! modeled accelerator at these memory-bound shapes. Because the clock is
//! virtual, every latency and throughput number is bit-reproducible across
//! hosts and runs; `ServeReport::workload` prices the very same step
//! sequence through `figlut-sim` when real energy numbers are wanted.
//!
//! Without a [`ServeConfig::prefill_chunk`] budget, each step is either
//! one session's whole-prompt prefill or one batched decode of every
//! running session — so a long prompt stalls every running decode for its
//! full length (head-of-line blocking). With a budget `c`, the scheduler
//! instead packs **mixed steps**: every running decode row plus up to `c`
//! prompt rows of the oldest pending prompt, fused into one
//! [`BatchEngine::step`], bounding each running session's inter-token
//! stall by `step_overhead + c + max_batch` ticks instead of
//! `step_overhead + prompt_len + max_batch`.
//!
//! Scheduling changes *when* sessions advance, never *what* they emit:
//! tokens are batch-invariant (see [`crate::engine`]), so policies and
//! chunk budgets are compared on latency/throughput alone with accuracy
//! provably fixed.

use crate::engine::{BatchEngine, FinishReason, SessionState};
use crate::metrics::{PagingStats, RequestMetrics, ResilienceStats, ServeReport, StepRecord};
use crate::request::{Request, Trace};
use figlut_model::rng::Rng;
use figlut_model::{BlockPool, PrefixRegistry};
use figlut_trace::{counters, Event};
use std::collections::VecDeque;

/// Batch-assembly policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Static FCFS batching: fill the batch in arrival order up to
    /// `max_batch`, then run it to completion before admitting anyone else
    /// (the classic pre-continuous-batching baseline).
    Fcfs,
    /// Continuous batching, admission-eager: whenever a slot is free and a
    /// request is waiting, prefill it *now*; decode otherwise. Best TTFT
    /// and occupancy; running sessions stall during each prefill.
    PrefillPriority,
    /// Continuous batching, decode-eager: never delay a decode step while
    /// any session is running; admit only when the running set drains.
    /// Best per-token cadence for admitted sessions, worst admission under
    /// load.
    DecodePriority,
}

impl Policy {
    /// All policies, in display order.
    pub const ALL: [Policy; 3] = [
        Policy::Fcfs,
        Policy::PrefillPriority,
        Policy::DecodePriority,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs-static",
            Policy::PrefillPriority => "prefill-priority",
            Policy::DecodePriority => "decode-priority",
        }
    }
}

/// When the scheduler sheds pending work instead of queueing it forever.
///
/// Applied to the pending queue every loop iteration, right after the
/// arrival drain. A shed request finishes immediately with
/// [`FinishReason::Shed`], zero tokens, and `admitted == first_token ==
/// finish` stamped at the shed tick — so overload degrades into an honest
/// rejection signal instead of unbounded queue delay eating every TTFT
/// (the `ext-overload` collapse). Shedding never touches admitted
/// sessions, so every served token stream stays bit-identical to its solo
/// run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything, however late (the default — byte-identical to the
    /// pre-admission-control scheduler).
    Unbounded,
    /// Shed newest-first whenever more than `depth` requests are pending.
    QueueCap {
        /// Maximum pending requests retained.
        depth: usize,
    },
    /// Token-budget backpressure: shed newest-first while the pending
    /// queue's committed token load (`prompt_len + max_new`, summed)
    /// exceeds `tokens`. The oldest pending request always survives, so
    /// one oversized request cannot wedge the queue.
    TokenBudget {
        /// Maximum committed prompt+generation tokens queued.
        tokens: usize,
    },
    /// SLO-aware shedding: drop any pending request whose time-to-first-
    /// token is already unattainable — `queue wait so far + prompt_len +
    /// step_overhead` is a lower bound on its TTFT no schedule can beat,
    /// so once that exceeds `ttft` the request is dead weight.
    SloShed {
        /// The TTFT bound (ticks) being enforced.
        ttft: u64,
    },
}

impl AdmissionPolicy {
    /// Short display name (CSV/report key).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::Unbounded => "unbounded",
            AdmissionPolicy::QueueCap { .. } => "queue-cap",
            AdmissionPolicy::TokenBudget { .. } => "token-budget",
            AdmissionPolicy::SloShed { .. } => "slo-shed",
        }
    }
}

/// Scheduler knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum sessions decoded per step (and held concurrently; a
    /// mid-prefill session occupies one of these slots).
    pub max_batch: usize,
    /// Batch-assembly policy.
    pub policy: Policy,
    /// Fixed virtual-clock cost added to every step, on top of one tick
    /// per token-row processed.
    pub step_overhead: u64,
    /// Chunked-prefill budget. `None` (the default) runs each admitted
    /// prompt as one monolithic prefill step that stalls every running
    /// decode for the prompt's full length. `Some(c)` fuses prefill into
    /// **mixed steps**: every step carries all running decode rows plus up
    /// to `c` prompt rows of the oldest pending prompt, so no running
    /// session ever stalls longer than `step_overhead + c + max_batch`
    /// ticks. The emitted tokens are bit-identical either way; the sweet
    /// spot for the packed host kernels is the exec column engines'
    /// full-width block (`WIDE_MAX = 64` rows).
    pub prefill_chunk: Option<usize>,
    /// Paged-KV block size. `None` (the default) keeps each session's K/V
    /// in its own contiguous allocation — the pre-paging layout, pinned by
    /// the golden trace. `Some(b)` stores K/V in pool blocks of `b`
    /// positions behind a per-session block table, enabling shared-prefix
    /// storage and preempt/restore. The emitted tokens are bit-identical
    /// either way: paging changes where rows live, never what they hold.
    pub block_size: Option<usize>,
    /// Cap on simultaneously-live KV blocks (requires `block_size`).
    /// `None` leaves the pool unbounded. Under a cap the scheduler frees
    /// memory by evicting shared-prefix registry entries and then
    /// **preempting** sessions to host memory — never by finishing them —
    /// and restores them later with RNG and generated tokens intact.
    pub pool_blocks: Option<usize>,
    /// Admission control over the pending queue
    /// ([`AdmissionPolicy::Unbounded`] by default — every committed trace
    /// predates shedding and must stay byte-identical).
    pub admission: AdmissionPolicy,
}

impl ServeConfig {
    /// A configuration with the default per-step overhead of 1 tick,
    /// monolithic (un-chunked) prefill, and contiguous (un-paged) KV.
    pub fn new(max_batch: usize, policy: Policy) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self {
            max_batch,
            policy,
            step_overhead: 1,
            prefill_chunk: None,
            block_size: None,
            pool_blocks: None,
            admission: AdmissionPolicy::Unbounded,
        }
    }

    /// Enable chunked prefill with a per-step budget of `chunk` prompt
    /// rows.
    pub fn with_prefill_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk >= 1, "prefill_chunk must be at least 1");
        self.prefill_chunk = Some(chunk);
        self
    }

    /// Enable paged KV with blocks of `block_size` positions.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size >= 1, "block_size must be at least 1");
        self.block_size = Some(block_size);
        self
    }

    /// Cap the block pool at `pool_blocks` live blocks (paging must be
    /// on). The cap must hold at least one full-context session —
    /// [`serve`] validates this, so a single session can always run to its
    /// context limit no matter how the rest of the batch is preempted.
    pub fn with_pool_blocks(mut self, pool_blocks: usize) -> Self {
        self.pool_blocks = Some(pool_blocks);
        self
    }

    /// Set the admission policy over the pending queue.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }
}

/// A deterministic, seeded schedule of injected faults, delivered through
/// [`ServeHooks::fault_plan`]. Every fault class draws from one seeded
/// [`Rng`] at defined scheduler points, so a given `(plan, trace, config)`
/// triple injects the identical fault sequence on every run — which is
/// what lets the property suite assert recovery is *exact* (served token
/// streams bit-identical to the fault-free run) rather than best-effort.
///
/// The plan carries a total fault `budget`; every injected fault consumes
/// one unit and an exhausted plan is quiet, so faulted runs provably
/// terminate (a retry loop cannot be re-failed forever).
///
/// Fault classes (each gated by a per-mille rate, default 0):
///
/// * **Transient step failure** — the scheduled step is abandoned before
///   executing; the scheduler charges `step_overhead` ticks and retries.
/// * **Swap-in failure** — a restore attempt is abandoned; the preempted
///   session stays queued and is retried on a later iteration.
/// * **Restore corruption** — the swap-in transfer silently flips one KV
///   bit. Injected only while the checksum pass is on (see
///   [`figlut_model::set_kv_checksums`]): the verify pass detects the
///   mismatch, the corrupted blocks are dropped, and the clean host image
///   is re-queued for another restore — the classic detect-and-retransfer
///   recovery. (Without checksums the corruption would silently diverge
///   the token stream, so an un-checksummed plan never injects it.)
/// * **Pool-exhaustion spike** — the newest running session is preempted
///   to host as if the pool had momentarily vanished; the existing
///   preempt/restore machinery recovers it. Requires paging.
/// * **Crash** — `panic!` immediately before executing a chosen step
///   index, for checkpoint/resume tests (see [`Checkpoint`]).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rng: Rng,
    budget: usize,
    step_fail_permille: u32,
    swap_in_fail_permille: u32,
    corrupt_restore_permille: u32,
    pool_spike_permille: u32,
    crash_at_step: Option<usize>,
}

impl FaultPlan {
    /// A quiet plan: seeded, budgeted, all fault rates zero.
    pub fn new(seed: u64, budget: usize) -> Self {
        Self {
            rng: Rng::new(seed),
            budget,
            step_fail_permille: 0,
            swap_in_fail_permille: 0,
            corrupt_restore_permille: 0,
            pool_spike_permille: 0,
            crash_at_step: None,
        }
    }

    /// Fail scheduled steps transiently at `permille`/1000.
    pub fn with_step_failures(mut self, permille: u32) -> Self {
        self.step_fail_permille = permille;
        self
    }

    /// Fail restore attempts at `permille`/1000.
    pub fn with_swap_in_failures(mut self, permille: u32) -> Self {
        self.swap_in_fail_permille = permille;
        self
    }

    /// Corrupt swap-in transfers at `permille`/1000 (checksums must be on
    /// for the fault to be injected at all — see the type docs).
    pub fn with_restore_corruption(mut self, permille: u32) -> Self {
        self.corrupt_restore_permille = permille;
        self
    }

    /// Inject pool-exhaustion spikes at `permille`/1000 (paging only).
    pub fn with_pool_spikes(mut self, permille: u32) -> Self {
        self.pool_spike_permille = permille;
        self
    }

    /// Panic (a simulated crash) right before executing step `step`.
    pub fn with_crash_at_step(mut self, step: usize) -> Self {
        self.crash_at_step = Some(step);
        self
    }

    /// Injected faults left before the plan goes quiet.
    pub fn remaining_budget(&self) -> usize {
        self.budget
    }

    /// One fault decision at `permille`/1000, consuming budget on a hit.
    fn draw(&mut self, permille: u32) -> bool {
        if self.budget == 0 || permille == 0 {
            return false;
        }
        let hit = self.rng.below(1000) < permille as usize;
        if hit {
            self.budget -= 1;
        }
        hit
    }

    fn draw_step_failure(&mut self) -> bool {
        self.draw(self.step_fail_permille)
    }

    fn draw_swap_in_failure(&mut self) -> bool {
        self.draw(self.swap_in_fail_permille)
    }

    fn draw_pool_spike(&mut self) -> bool {
        self.draw(self.pool_spike_permille)
    }

    /// `Some(salt)` when a restore-corruption fault fires (only while the
    /// checksum pass can catch it).
    fn draw_restore_corruption(&mut self) -> Option<u64> {
        if figlut_model::kv_checksums_enabled() && self.draw(self.corrupt_restore_permille) {
            Some(self.rng.next_u64())
        } else {
            None
        }
    }

    fn crashes_at(&self, step: usize) -> bool {
        self.crash_at_step == Some(step)
    }
}

/// A crash-consistent snapshot of a serving run, captured by
/// [`ServeHooks::checkpoint`] at a step boundary (chunked runs: with no
/// prefill in flight) and resumable with [`resume`]. Sessions are stored
/// as host swap images when paging is on (contiguous clones otherwise),
/// the sampler RNGs and generated tokens ride inside the cloned
/// [`SessionState`]s, and the virtual clock, queues, finished metrics, and
/// executed steps are carried verbatim — so a resumed run continues the
/// exact schedule and emits byte-identical tokens, with the final
/// [`ServeReport`]'s requests, steps, and ticks reconciling against the
/// uninterrupted run (paging pool peaks may differ: the resumed pool and
/// prefix registry start fresh).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Virtual clock at capture.
    pub clock: u64,
    /// Requests that had not yet arrived, in trace order.
    pub arrivals: Vec<Request>,
    /// Arrived but unadmitted requests, queue order.
    pub pending: Vec<Request>,
    /// Live sessions: the running batch in order, then any preempted
    /// sessions in restore (FIFO) order. Paged sessions are host images.
    pub sessions: Vec<SessionState>,
    /// Requests already finished, with their metrics.
    pub finished: Vec<RequestMetrics>,
    /// Steps already executed.
    pub steps: Vec<StepRecord>,
    /// Peak resident KV rows so far.
    pub peak_kv_rows: usize,
    /// The FCFS seal flag at capture.
    pub sealed: bool,
    /// Resilience activity up to the capture.
    pub resilience: ResilienceStats,
}

/// Out-of-band instrumentation for [`serve_with_hooks`] — knobs that are
/// closures and therefore cannot live in the `Copy` [`ServeConfig`].
#[derive(Default)]
pub struct ServeHooks<'a> {
    /// Forced-preemption schedule for tests and experiments. Consulted at
    /// most once per step index, just before the step executes, with
    /// `(step_index, running request ids in batch order)`; every returned
    /// id that is currently running is swapped out to host memory before
    /// the step (unknown ids are ignored). Only consulted when paging is
    /// on ([`ServeConfig::block_size`]) — preemption needs a block pool to
    /// return to — and the preempted sessions are restored automatically
    /// as soon as a batch slot and pool capacity allow.
    #[allow(clippy::type_complexity)]
    pub force_preempt: Option<Box<dyn FnMut(usize, &[usize]) -> Vec<usize> + 'a>>,
    /// Deterministic fault injection (`None` = quiet run). See
    /// [`FaultPlan`] for the fault classes and their recovery paths.
    pub fault_plan: Option<FaultPlan>,
    /// Periodic checkpoint capture (`None` = never). See [`Checkpoint`].
    pub checkpoint: Option<CheckpointHook<'a>>,
}

/// Periodic checkpoint capture for [`ServeHooks::checkpoint`].
pub struct CheckpointHook<'a> {
    /// Capture cadence: a snapshot after every `every_steps` executed
    /// steps (chunked runs defer a due capture until no prefill is in
    /// flight). Must be at least 1.
    pub every_steps: usize,
    /// Receives each captured [`Checkpoint`] (e.g. pushes it into a log;
    /// [`resume`] takes the last one).
    pub sink: Box<dyn FnMut(Checkpoint) + 'a>,
}

/// What the loop decided to do next.
enum Action {
    Prefill,
    Decode,
}

/// KV-memory runtime of one serving run.
enum Memory {
    /// Contiguous per-session caches (paging off): allocation always
    /// succeeds and there is nothing to manage. This path is byte-for-byte
    /// the pre-paging scheduler.
    Unmanaged,
    /// Block-table paging: a (possibly bounded) [`BlockPool`], the
    /// shared-prefix registry, and the swapped-out session queue.
    Paged(Box<PagedRt>),
}

/// Mutable paging state threaded through a serving loop.
struct PagedRt {
    pool: BlockPool,
    registry: PrefixRegistry,
    /// Preempted sessions, oldest first — restored in FIFO order so no
    /// session is starved by later preemptions.
    swapped: VecDeque<SessionState>,
    /// Host<->device KV rows copied since the last executed step; drained
    /// into the next [`StepRecord::swapped_rows`] so `workload()` prices
    /// the traffic.
    pending_swap_rows: usize,
    swaps_out: usize,
    swaps_in: usize,
    swapped_rows_total: usize,
    shared_rows: usize,
}

impl Memory {
    fn new(engine: &BatchEngine<'_>, cfg: &ServeConfig) -> Self {
        let Some(bs) = cfg.block_size else {
            assert!(
                cfg.pool_blocks.is_none(),
                "pool_blocks requires block_size (a cap needs a pool to cap)"
            );
            return Memory::Unmanaged;
        };
        let model_cfg = engine.model().cfg;
        if let Some(cap) = cfg.pool_blocks {
            // Deadlock freedom: one full-context session (table plus the
            // append that reaches max_seq) must always fit, because
            // preemption can free every block except the last runner's.
            let need = model_cfg.max_seq.div_ceil(bs);
            assert!(
                cap >= need,
                "pool_blocks {cap} cannot hold one full-context session \
                 ({need} blocks of {bs} rows for max_seq {})",
                model_cfg.max_seq
            );
        }
        let pool = BlockPool::for_model(&model_cfg, bs, cfg.pool_blocks);
        let registry = PrefixRegistry::new(&pool);
        Memory::Paged(Box::new(PagedRt {
            pool,
            registry,
            swapped: VecDeque::new(),
            pending_swap_rows: 0,
            swaps_out: 0,
            swaps_in: 0,
            swapped_rows_total: 0,
            shared_rows: 0,
        }))
    }

    /// `true` when no session is swapped out (the loop may go idle).
    fn idle(&self) -> bool {
        match self {
            Memory::Unmanaged => true,
            Memory::Paged(rt) => rt.swapped.is_empty(),
        }
    }

    /// Open a session for `req`: contiguous cache when unmanaged, a paged
    /// cache (adopting the longest registered shared prefix) when paging.
    fn start(&mut self, engine: &BatchEngine<'_>, req: Request) -> SessionState {
        match self {
            Memory::Unmanaged => engine.start(req),
            Memory::Paged(rt) => {
                let mut cache = engine.model().new_paged_cache(&rt.pool);
                rt.shared_rows += rt.registry.adopt_into(&req.prompt, &mut cache);
                engine.start_with_cache(req, cache)
            }
        }
    }

    /// Offer a freshly-prefilled session's prompt to the prefix registry.
    fn register(&mut self, s: &SessionState) {
        if let Memory::Paged(rt) = self {
            rt.registry.register(&s.request.prompt, s.cache());
        }
    }

    /// Drain the swap traffic accumulated since the last executed step.
    fn take_pending(&mut self) -> usize {
        match self {
            Memory::Unmanaged => 0,
            Memory::Paged(rt) => std::mem::take(&mut rt.pending_swap_rows),
        }
    }
}

impl PagedRt {
    /// Swap `s` out to host memory and queue it for a later restore.
    fn preempt(&mut self, mut s: SessionState) {
        let rows = s.swap_out();
        self.pending_swap_rows += rows;
        self.swapped_rows_total += rows;
        self.swaps_out += 1;
        counters::bump_serve_preemptions(1);
        self.swapped.push_back(s);
    }

    /// Restore the oldest swapped-out session if the pool can hold its
    /// table again, evicting shared-prefix registry entries if that is
    /// what it takes (restores never preempt running sessions — that would
    /// thrash).
    fn try_restore(&mut self) -> Option<SessionState> {
        let need = self.swapped.front()?.restore_blocks();
        while self.pool.available_blocks() < need {
            if !self.registry.evict_oldest() {
                return None;
            }
        }
        // audit: allow(panic) — the `?` on swapped.front() above proves the queue is nonempty
        let mut s = self.swapped.pop_front().expect("front checked above");
        let rows = s.restore();
        self.pending_swap_rows += rows;
        self.swapped_rows_total += rows;
        self.swaps_in += 1;
        counters::bump_serve_restores(1);
        Some(s)
    }

    /// Free blocks until the upcoming step fits: `per_runner_rows` rows
    /// will be appended to every running session, plus whatever `extra`
    /// reports for the prefill side. Evicts registry entries oldest-first,
    /// then preempts running sessions newest-first (never below `floor`
    /// survivors), re-measuring after every release — a refcount drop can
    /// turn a planned copy-on-write into a plain in-place append.
    fn make_room<F: Fn() -> usize>(
        &mut self,
        running: &mut Vec<SessionState>,
        per_runner_rows: usize,
        extra: F,
        floor: usize,
    ) {
        loop {
            let need: usize = running
                .iter()
                .map(|s| s.blocks_needed(per_runner_rows))
                .sum::<usize>()
                + extra();
            if self.pool.available_blocks() >= need {
                return;
            }
            if self.registry.evict_oldest() {
                continue;
            }
            assert!(
                running.len() > floor,
                "block pool too small for the minimal step — \
                 pool_blocks must hold one full-context session"
            );
            // audit: allow(panic) — the assert above guarantees running.len() > floor >= 0
            let victim = running.pop().expect("floor checked above");
            self.preempt(victim);
        }
    }
}

/// Admission bookkeeping shared by both serving loops: stamp the session's
/// admission tick (queue wait = `admitted - arrival`), bump the trace
/// counter, and emit an instant event when a session is being traced.
fn note_admission(s: &mut SessionState, clock: u64, queue_after: usize) {
    s.admitted = clock;
    counters::bump_serve_admissions(1);
    if !figlut_trace::enabled() {
        return;
    }
    let args = [("id", s.request.id as u64), ("queue", queue_after as u64)];
    figlut_trace::emit(&Event::Instant {
        name: "admit",
        ts: figlut_trace::run_base() + clock,
        args: &args,
    });
}

/// Per-step trace hook, called right after each `StepRecord` is pushed:
/// one span per executed scheduler step, stamped with its virtual start
/// tick and cost and carrying queue depth, batch occupancy, the phase row
/// split, and the paging activity since the previous step (`last_swaps`
/// carries the previous step's cumulative swap counts across calls).
fn trace_step(
    clock_after: u64,
    rec: &StepRecord,
    queue: usize,
    batch: usize,
    memory: &Memory,
    last_swaps: &mut (usize, usize),
) {
    counters::bump_serve_steps(1);
    if !figlut_trace::enabled() {
        return;
    }
    let (preempts, restores, live_blocks) = match memory {
        Memory::Unmanaged => (0, 0, 0),
        Memory::Paged(rt) => {
            let d = (rt.swaps_out - last_swaps.0, rt.swaps_in - last_swaps.1);
            *last_swaps = (rt.swaps_out, rt.swaps_in);
            (d.0, d.1, rt.pool.live_blocks())
        }
    };
    let ts = figlut_trace::run_base() + (clock_after - rec.cost);
    let args = [
        ("queue", queue as u64),
        ("batch", batch as u64),
        ("prefill_rows", rec.prefill_rows as u64),
        ("decode_rows", rec.decode_rows as u64),
        ("swapped_rows", rec.swapped_rows as u64),
        ("preempts", preempts as u64),
        ("restores", restores as u64),
        ("live_blocks", live_blocks as u64),
    ];
    figlut_trace::emit(&Event::Span {
        name: rec.kind().name(),
        ts,
        dur: rec.cost,
        args: &args,
    });
    figlut_trace::emit(&Event::Counter {
        name: "queue_depth",
        ts,
        value: queue as u64,
    });
}

/// Close a finished session into its metrics record. A session that
/// finished without emitting (a zero generation budget) gets
/// `first_token == finish` — well-defined, not a panic.
fn metrics_of(s: SessionState, reason: FinishReason, finish: u64) -> RequestMetrics {
    debug_assert_eq!(
        s.token_ticks.len(),
        s.generated.len(),
        "request {}: emission ticks out of sync with tokens",
        s.request.id
    );
    RequestMetrics {
        id: s.request.id,
        arrival: s.request.arrival,
        admitted: s.admitted,
        first_token: s.token_ticks.first().copied().unwrap_or(finish),
        finish,
        prompt_len: s.request.prompt.len(),
        tokens: s.generated.len(),
        reason,
        generated: s.generated,
        token_ticks: s.token_ticks,
    }
}

/// Close a request that finished without any engine work — a zero-budget
/// admission or an admission-policy shed — into its metrics record:
/// `admitted == first_token == finish == tick`, zero tokens.
fn metrics_without_tokens(req: Request, reason: FinishReason, tick: u64) -> RequestMetrics {
    RequestMetrics {
        id: req.id,
        arrival: req.arrival,
        admitted: tick,
        first_token: tick,
        finish: tick,
        prompt_len: req.prompt.len(),
        tokens: 0,
        reason,
        generated: Vec::new(),
        token_ticks: Vec::new(),
    }
}

/// Apply the admission policy to the pending queue (called right after
/// each arrival drain). Shed requests finish immediately with
/// [`FinishReason::Shed`]; [`AdmissionPolicy::Unbounded`] is a no-op, so
/// the default path is untouched.
fn apply_admission(
    policy: AdmissionPolicy,
    pending: &mut VecDeque<Request>,
    clock: u64,
    step_overhead: u64,
    finished: &mut Vec<RequestMetrics>,
    resilience: &mut ResilienceStats,
) {
    let mut shed: Vec<Request> = Vec::new();
    match policy {
        AdmissionPolicy::Unbounded => {}
        AdmissionPolicy::QueueCap { depth } => {
            while pending.len() > depth {
                // audit: allow(panic) — the loop condition pending.len() > depth proves nonempty
                shed.push(pending.pop_back().expect("len checked"));
            }
        }
        AdmissionPolicy::TokenBudget { tokens } => {
            let load = |q: &VecDeque<Request>| -> usize {
                q.iter().map(|r| r.prompt.len() + r.max_new).sum()
            };
            while pending.len() > 1 && load(pending) > tokens {
                // audit: allow(panic) — the loop condition pending.len() > depth proves nonempty
                shed.push(pending.pop_back().expect("len checked"));
            }
        }
        AdmissionPolicy::SloShed { ttft } => {
            let blown = |r: &Request| {
                // The best case from here: admitted this very tick, prompt
                // rows at one tick each, one step overhead. Unattainable
                // TTFT = certain SLO miss = dead weight in the queue.
                (clock - r.arrival) + r.prompt.len() as u64 + step_overhead > ttft
            };
            let mut keep = VecDeque::with_capacity(pending.len());
            while let Some(r) = pending.pop_front() {
                if blown(&r) {
                    shed.push(r);
                } else {
                    keep.push_back(r);
                }
            }
            *pending = keep;
        }
    }
    for req in shed {
        counters::bump_serve_sheds(1);
        resilience.shed_requests += 1;
        finished.push(metrics_without_tokens(req, FinishReason::Shed, clock));
    }
}

/// Restore preempted sessions (oldest first) into free batch slots, under
/// injected swap-in failures and transfer corruption: a failed draw
/// abandons this iteration's restores, and a corrupted transfer — caught
/// by the checksum pass — drops the corrupted blocks and re-queues the
/// clean host image for a later retry. With no fault plan this is exactly
/// the pre-resilience restore loop.
fn restore_swapped(
    rt: &mut PagedRt,
    running: &mut Vec<SessionState>,
    slots: usize,
    mut plan: Option<&mut FaultPlan>,
    resilience: &mut ResilienceStats,
) {
    while running.len() < slots && !rt.swapped.is_empty() {
        if let Some(p) = plan.as_deref_mut() {
            if p.draw_swap_in_failure() {
                counters::bump_serve_swap_in_retries(1);
                resilience.swap_in_retries += 1;
                return;
            }
        }
        let salt = plan
            .as_deref_mut()
            .and_then(FaultPlan::draw_restore_corruption);
        // The host image is the clean recovery source: clone it before the
        // (possibly corrupted) transfer.
        // audit: allow(panic) — draw_restore_corruption only fires when a swapped session exists
        let backup = salt.map(|_| rt.swapped.front().expect("checked nonempty").clone());
        let Some(mut s) = rt.try_restore() else {
            return;
        };
        if let Some(salt) = salt {
            let _ = s.corrupt_kv(salt);
            if s.verify_kv().is_err() {
                // Detected: drop the corrupted blocks (s goes out of
                // scope), re-queue the clean image, retry later.
                resilience.checksum_faults += 1;
                counters::bump_serve_swap_in_retries(1);
                resilience.swap_in_retries += 1;
                rt.swapped
                    // audit: allow(panic) — backup is Some on every path where salt is Some
                    .push_front(backup.expect("cloned when the fault was drawn"));
                return;
            }
        }
        running.push(s);
    }
}

/// Preempt the newest running session if a pool-exhaustion spike fires
/// (paging only, and never the last runner — the spike models transient
/// pressure, not a wedged scheduler).
fn maybe_pool_spike(
    rt: &mut PagedRt,
    running: &mut Vec<SessionState>,
    plan: &mut Option<FaultPlan>,
    resilience: &mut ResilienceStats,
) {
    if running.len() < 2 {
        return;
    }
    if let Some(p) = plan.as_mut() {
        if p.draw_pool_spike() {
            counters::bump_serve_pool_spikes(1);
            resilience.pool_spikes += 1;
            // audit: allow(panic) — running.len() >= 2 was checked on entry
            let victim = running.pop().expect("len checked");
            rt.preempt(victim);
        }
    }
}

/// The mutable state both serving loops run over — built fresh from a
/// trace, or rehydrated from a [`Checkpoint`] by [`resume`].
struct LoopState {
    arrivals: VecDeque<Request>,
    pending: VecDeque<Request>,
    running: Vec<SessionState>,
    finished: Vec<RequestMetrics>,
    steps: Vec<StepRecord>,
    clock: u64,
    peak_kv_rows: usize,
    sealed: bool,
    resilience: ResilienceStats,
}

impl LoopState {
    fn fresh(trace: &Trace) -> Self {
        Self {
            arrivals: trace.requests.iter().cloned().collect(),
            pending: VecDeque::new(),
            running: Vec::new(),
            finished: Vec::new(),
            steps: Vec::new(),
            clock: 0,
            peak_kv_rows: 0,
            sealed: false,
            resilience: ResilienceStats::default(),
        }
    }

    /// Rehydrate from a checkpoint: paged sessions are restored straight
    /// from their host images into a fresh pool (rebind + restore, outside
    /// the swap accounting — in the uninterrupted run they were never
    /// preempted); sessions the pool or batch cannot hold yet queue as
    /// swapped and come back through the normal restore path.
    fn from_checkpoint(ck: Checkpoint, memory: &mut Memory, max_batch: usize) -> Self {
        let mut running: Vec<SessionState> = Vec::new();
        match memory {
            Memory::Unmanaged => {
                for s in ck.sessions {
                    assert!(
                        !s.is_swapped(),
                        "request {}: paged checkpoint resumed without paging",
                        s.request.id
                    );
                    running.push(s);
                }
            }
            Memory::Paged(rt) => {
                for mut s in ck.sessions {
                    assert!(
                        s.is_swapped(),
                        "request {}: contiguous checkpoint resumed with paging",
                        s.request.id
                    );
                    s.rebind_pool(&rt.pool);
                    if running.len() < max_batch && rt.pool.available_blocks() >= s.restore_blocks()
                    {
                        let _ = s.restore();
                        running.push(s);
                    } else {
                        rt.swapped.push_back(s);
                    }
                }
            }
        }
        Self {
            arrivals: ck.arrivals.into(),
            pending: ck.pending.into(),
            running,
            finished: ck.finished,
            steps: ck.steps,
            clock: ck.clock,
            peak_kv_rows: ck.peak_kv_rows,
            sealed: ck.sealed,
            resilience: ck.resilience,
        }
    }
}

/// Capture the current loop state as a [`Checkpoint`] (running sessions
/// are cloned — paged ones as host swap images — so the live run is not
/// disturbed) and hand it to the hook's sink.
#[allow(clippy::too_many_arguments)]
fn capture_checkpoint(
    memory: &Memory,
    hook: &mut CheckpointHook<'_>,
    arrivals: &VecDeque<Request>,
    pending: &VecDeque<Request>,
    running: &[SessionState],
    finished: &[RequestMetrics],
    steps: &[StepRecord],
    clock: u64,
    peak_kv_rows: usize,
    sealed: bool,
    resilience: &mut ResilienceStats,
) {
    counters::bump_serve_checkpoints(1);
    resilience.checkpoints += 1;
    let mut sessions: Vec<SessionState> = running
        .iter()
        .map(|s| {
            let mut c = s.clone();
            if matches!(memory, Memory::Paged(_)) {
                let _ = c.swap_out();
            }
            c
        })
        .collect();
    if let Memory::Paged(rt) = memory {
        sessions.extend(rt.swapped.iter().cloned());
    }
    (hook.sink)(Checkpoint {
        clock,
        arrivals: arrivals.iter().cloned().collect(),
        pending: pending.iter().cloned().collect(),
        sessions,
        finished: finished.to_vec(),
        steps: steps.to_vec(),
        peak_kv_rows,
        sealed,
        resilience: *resilience,
    });
}

/// Serve `trace` to completion and return the full report.
///
/// Requests are admitted in `(arrival, id)` order; the loop runs until
/// every request has finished (completed its budget or exhausted the
/// model's context). The emitted token streams are bit-identical to each
/// request's [`BatchEngine::solo_run`] for **every** policy, `max_batch`,
/// `prefill_chunk` budget, and paged-KV layout (`block_size` ×
/// `pool_blocks`, preemptions included) — the property suite and `repro
/// ext-serving` / `repro ext-chunked-prefill` / `repro ext-paged-kv`
/// assert this before any throughput number is believed.
///
/// # Panics
///
/// Panics if the trace fails [`Trace::validate`] against the served
/// model, or if [`ServeConfig::pool_blocks`] cannot hold one full-context
/// session.
pub fn serve(engine: &BatchEngine<'_>, trace: &Trace, cfg: &ServeConfig) -> ServeReport {
    serve_with_hooks(engine, trace, cfg, ServeHooks::default())
}

/// [`serve`] with out-of-band instrumentation: a forced-preemption
/// schedule, a deterministic [`FaultPlan`], and a periodic
/// [`CheckpointHook`]. The paging/preemption and resilience property
/// suites use these to prove that *scheduler-chosen* swap points, injected
/// faults, and kill/resume cycles all leave every token stream
/// bit-identical.
///
/// # Panics
///
/// As [`serve`], plus the injected crash of
/// [`FaultPlan::with_crash_at_step`].
pub fn serve_with_hooks(
    engine: &BatchEngine<'_>,
    trace: &Trace,
    cfg: &ServeConfig,
    hooks: ServeHooks<'_>,
) -> ServeReport {
    let model_cfg = engine.model().cfg;
    trace.validate(&model_cfg);
    let memory = Memory::new(engine, cfg);
    run_loops(engine, cfg, LoopState::fresh(trace), memory, hooks)
}

/// Continue a run from a [`Checkpoint`] captured by
/// [`ServeHooks::checkpoint`]: rebuild the scheduler state (sessions,
/// queues, clock, executed steps) in a fresh memory runtime and run the
/// remaining schedule to completion. The resumed report's requests,
/// steps, and ticks reconcile exactly with the uninterrupted run's; with
/// a bounded pool the *storage* accounting (pool peaks, shared rows) may
/// differ, because the resumed pool and prefix registry start empty.
///
/// # Panics
///
/// Panics if `cfg` paging disagrees with the checkpoint's session images
/// (a paged checkpoint must resume with paging on, and vice versa), or if
/// the pool shape (`block_size` × model) differs from the captured one.
pub fn resume(
    engine: &BatchEngine<'_>,
    checkpoint: Checkpoint,
    cfg: &ServeConfig,
    hooks: ServeHooks<'_>,
) -> ServeReport {
    counters::bump_serve_resumes(1);
    let mut memory = Memory::new(engine, cfg);
    let state = LoopState::from_checkpoint(checkpoint, &mut memory, cfg.max_batch);
    run_loops(engine, cfg, state, memory, hooks)
}

/// Shared tail of [`serve_with_hooks`] and [`resume`]: dispatch on the
/// prefill mode, then close out paging stats and the trace run.
fn run_loops(
    engine: &BatchEngine<'_>,
    cfg: &ServeConfig,
    state: LoopState,
    mut memory: Memory,
    mut hooks: ServeHooks<'_>,
) -> ServeReport {
    let mut report = match cfg.prefill_chunk {
        None => serve_monolithic(engine, cfg, state, &mut memory, &mut hooks),
        Some(chunk) => serve_chunked(engine, cfg, chunk, state, &mut memory, &mut hooks),
    };
    if let Memory::Paged(rt) = &mut memory {
        debug_assert!(
            rt.swapped.is_empty(),
            "run ended with sessions still swapped out"
        );
        debug_assert_eq!(
            rt.pending_swap_rows, 0,
            "swap traffic left unpriced by any step"
        );
        rt.registry.clear();
        report.paging = Some(PagingStats {
            block_size: rt.pool.block_size(),
            pool_blocks: rt.pool.capacity(),
            peak_live_blocks: rt.pool.peak_live_blocks(),
            final_live_blocks: rt.pool.live_blocks(),
            bytes_per_block: rt.pool.bytes_per_block(),
            swaps_out: rt.swaps_out,
            swaps_in: rt.swaps_in,
            swapped_rows: rt.swapped_rows_total,
            shared_rows: rt.shared_rows,
        });
    }
    // Close the trace run: later serve calls in the same session continue
    // on a globally-monotone timestamp axis.
    figlut_trace::end_run(report.ticks);
    report
}

/// The `prefill_chunk: None` path: each admitted prompt runs as one
/// monolithic prefill step; decode steps batch every running session. This
/// is byte-for-byte the pre-chunking scheduler (pinned by the golden-trace
/// test below) — kept as its own loop so the default path cannot drift.
fn serve_monolithic(
    engine: &BatchEngine<'_>,
    cfg: &ServeConfig,
    state: LoopState,
    memory: &mut Memory,
    hooks: &mut ServeHooks<'_>,
) -> ServeReport {
    let max_seq = engine.model().cfg.max_seq;
    let LoopState {
        mut arrivals,
        mut pending,
        mut running,
        mut finished,
        mut steps,
        mut clock,
        mut peak_kv_rows,
        // FCFS only: set once the current batch starts decoding; admission
        // reopens when the batch drains.
        mut sealed,
        mut resilience,
    } = state;
    // Step index at which the forced-preemption hook last fired (at most
    // once per index, or an all-preempted batch would loop forever).
    let mut hook_step = usize::MAX;
    // Cumulative (swaps_out, swaps_in) at the previous step's span, so
    // each step span carries only its own paging activity.
    let mut last_swaps = (0usize, 0usize);
    // Executed-step count at the last checkpoint capture.
    let mut last_ckpt = steps.len();

    loop {
        while arrivals.front().is_some_and(|r| r.arrival <= clock) {
            // audit: allow(panic) — the while condition just observed arrivals.front() is Some
            pending.push_back(arrivals.pop_front().unwrap());
        }
        apply_admission(
            cfg.admission,
            &mut pending,
            clock,
            cfg.step_overhead,
            &mut finished,
            &mut resilience,
        );
        // Preempted sessions come back before anything else: restore the
        // oldest into free batch slots as soon as the pool fits them.
        if let Memory::Paged(rt) = memory {
            restore_swapped(
                rt,
                &mut running,
                cfg.max_batch,
                hooks.fault_plan.as_mut(),
                &mut resilience,
            );
        }
        if pending.is_empty() && running.is_empty() && memory.idle() {
            match arrivals.front() {
                // Idle: jump the clock to the next arrival.
                Some(r) => {
                    clock = r.arrival;
                    continue;
                }
                None => break,
            }
        }
        // Forced preemption (tests/experiments), once per step index.
        if let Memory::Paged(rt) = memory {
            if let Some(f) = hooks.force_preempt.as_mut() {
                if hook_step != steps.len() && !running.is_empty() {
                    hook_step = steps.len();
                    let ids: Vec<usize> = running.iter().map(|s| s.request.id).collect();
                    for id in f(steps.len(), &ids) {
                        if let Some(i) = running.iter().position(|s| s.request.id == id) {
                            rt.preempt(running.remove(i));
                        }
                    }
                    if running.is_empty() {
                        // An emptied FCFS batch cannot stay sealed: the
                        // survivors will be restored alongside fresh admits.
                        sealed = false;
                    }
                }
            }
            maybe_pool_spike(rt, &mut running, &mut hooks.fault_plan, &mut resilience);
            if running.is_empty() && pending.is_empty() {
                // Everything resident was swapped out: the next iteration
                // restores (always possible on an otherwise-empty pool).
                continue;
            }
        }
        if let Some(plan) = hooks.fault_plan.as_mut() {
            if plan.crashes_at(steps.len()) {
                // audit: allow(panic) — deliberate fault injection — the crash-consistency tests require a real panic
                panic!("injected crash before step {}", steps.len());
            }
            if plan.draw_step_failure() {
                // The scheduled step is abandoned before executing: charge
                // the fixed overhead and retry (the step index is
                // unchanged, so per-step hooks do not refire).
                counters::bump_serve_step_retries(1);
                resilience.step_retries += 1;
                clock += cfg.step_overhead;
                continue;
            }
        }
        let has_capacity = running.len() < cfg.max_batch;
        let can_admit = has_capacity && !pending.is_empty();
        let action = match cfg.policy {
            Policy::Fcfs => {
                if can_admit && !sealed {
                    Action::Prefill
                } else {
                    Action::Decode
                }
            }
            Policy::PrefillPriority => {
                if can_admit {
                    Action::Prefill
                } else {
                    Action::Decode
                }
            }
            Policy::DecodePriority => {
                if running.is_empty() {
                    Action::Prefill
                } else {
                    Action::Decode
                }
            }
        };
        match action {
            Action::Prefill => {
                let req = pending
                    .pop_front()
                    // audit: allow(panic) — Action::Prefill is only chosen when pending is nonempty
                    .expect("admission without a pending request");
                if req.max_new == 0 {
                    // A zero generation budget never runs: prefilling it
                    // would wrongly emit a first token (the prompt's last
                    // row always samples). Finish at the admission tick.
                    counters::bump_serve_admissions(1);
                    finished.push(metrics_without_tokens(req, FinishReason::Completed, clock));
                    continue;
                }
                let mut s = memory.start(engine, req);
                note_admission(&mut s, clock, pending.len());
                if let Memory::Paged(rt) = memory {
                    // The whole prompt lands this step; running sessions
                    // append nothing but may be preempted to make room.
                    let prompt_rows = s.request.prompt.len();
                    rt.make_room(&mut running, 0, || s.blocks_needed(prompt_rows), 0);
                }
                let rows = engine.prefill(&mut s);
                memory.register(&s);
                clock += cfg.step_overhead + rows as u64;
                steps.push(StepRecord {
                    prefill_rows: rows,
                    prefill_pos: 0,
                    decode_rows: 0,
                    swapped_rows: memory.take_pending(),
                    cost: cfg.step_overhead + rows as u64,
                });
                trace_step(
                    clock,
                    // audit: allow(panic) — a StepRecord was pushed immediately above
                    steps.last().expect("just pushed"),
                    pending.len(),
                    running.len() + 1,
                    memory,
                    &mut last_swaps,
                );
                peak_kv_rows = peak_kv_rows.max(
                    s.positions() + running.iter().map(SessionState::positions).sum::<usize>(),
                );
                // The prefill itself emits the first token: TTFT stops here.
                s.token_ticks.push(clock);
                match s.finish_reason(max_seq) {
                    Some(reason) => finished.push(metrics_of(s, reason, clock)),
                    None => running.push(s),
                }
            }
            Action::Decode => {
                if let Memory::Paged(rt) = memory {
                    // Every running session appends one row; keep at least
                    // one survivor (the pool provably fits a lone session).
                    rt.make_room(&mut running, 1, || 0, 1);
                }
                let batch = running.len();
                debug_assert!(batch >= 1 && batch <= cfg.max_batch);
                {
                    let mut refs: Vec<&mut SessionState> = running.iter_mut().collect();
                    engine.decode(&mut refs);
                }
                clock += cfg.step_overhead + batch as u64;
                steps.push(StepRecord {
                    prefill_rows: 0,
                    prefill_pos: 0,
                    decode_rows: batch,
                    swapped_rows: memory.take_pending(),
                    cost: cfg.step_overhead + batch as u64,
                });
                trace_step(
                    clock,
                    // audit: allow(panic) — a StepRecord was pushed immediately above
                    steps.last().expect("just pushed"),
                    pending.len(),
                    batch,
                    memory,
                    &mut last_swaps,
                );
                peak_kv_rows =
                    peak_kv_rows.max(running.iter().map(SessionState::positions).sum::<usize>());
                sealed = true;
                let mut still_running = Vec::with_capacity(running.len());
                for mut s in running.drain(..) {
                    s.token_ticks.push(clock);
                    match s.finish_reason(max_seq) {
                        Some(reason) => finished.push(metrics_of(s, reason, clock)),
                        None => still_running.push(s),
                    }
                }
                running = still_running;
                if running.is_empty() {
                    sealed = false;
                }
            }
        }
        if let Some(hook) = hooks.checkpoint.as_mut() {
            if steps.len() - last_ckpt >= hook.every_steps.max(1) {
                last_ckpt = steps.len();
                capture_checkpoint(
                    memory,
                    hook,
                    &arrivals,
                    &pending,
                    &running,
                    &finished,
                    &steps,
                    clock,
                    peak_kv_rows,
                    sealed,
                    &mut resilience,
                );
            }
        }
    }
    finished.sort_by_key(|m| m.id);
    ServeReport {
        requests: finished,
        steps,
        ticks: clock,
        max_batch: cfg.max_batch,
        peak_kv_rows,
        paging: None,
        resilience,
    }
}

/// The chunked-prefill path: one prompt prefills at a time (the oldest
/// admitted), `chunk` rows per step, fused with every running decode row
/// into a single [`BatchEngine::step`]. TTFT stops only when the last
/// chunk samples the first token.
///
/// Policies keep their admission character: prefill-priority admits into
/// any free slot, decode-priority admits only into an idle engine (so it
/// never actually mixes), and FCFS admits until a pure-decode step runs
/// (the batch is full or the queue is empty — the static-batching "seal"),
/// then drains. A mid-prefill session occupies a batch slot.
fn serve_chunked(
    engine: &BatchEngine<'_>,
    cfg: &ServeConfig,
    chunk: usize,
    state: LoopState,
    memory: &mut Memory,
    hooks: &mut ServeHooks<'_>,
) -> ServeReport {
    assert!(chunk >= 1, "prefill_chunk must be at least 1");
    let max_seq = engine.model().cfg.max_seq;
    let mut prefilling: Option<SessionState> = None;
    let LoopState {
        mut arrivals,
        mut pending,
        mut running,
        mut finished,
        mut steps,
        mut clock,
        mut peak_kv_rows,
        // FCFS only: set once a pure-decode step runs; admission reopens
        // when the batch drains.
        mut sealed,
        mut resilience,
    } = state;
    // Step index at which the forced-preemption hook last fired (at most
    // once per index, or an all-preempted batch would loop forever).
    let mut hook_step = usize::MAX;
    // Cumulative (swaps_out, swaps_in) at the previous step's span, so
    // each step span carries only its own paging activity.
    let mut last_swaps = (0usize, 0usize);
    // Executed-step count at the last checkpoint capture.
    let mut last_ckpt = steps.len();

    loop {
        while arrivals.front().is_some_and(|r| r.arrival <= clock) {
            // audit: allow(panic) — the while condition just observed arrivals.front() is Some
            pending.push_back(arrivals.pop_front().unwrap());
        }
        apply_admission(
            cfg.admission,
            &mut pending,
            clock,
            cfg.step_overhead,
            &mut finished,
            &mut resilience,
        );
        // Preempted sessions come back before anything else (the prefill
        // slot counts against the batch like everywhere else).
        if let Memory::Paged(rt) = memory {
            let slots = cfg.max_batch - usize::from(prefilling.is_some());
            restore_swapped(
                rt,
                &mut running,
                slots,
                hooks.fault_plan.as_mut(),
                &mut resilience,
            );
        }
        if pending.is_empty() && running.is_empty() && prefilling.is_none() && memory.idle() {
            match arrivals.front() {
                // Idle: jump the clock to the next arrival.
                Some(r) => {
                    clock = r.arrival;
                    continue;
                }
                None => break,
            }
        }
        // Admission into the single prefill slot (oldest pending first).
        if prefilling.is_none() {
            let has_capacity = running.len() < cfg.max_batch;
            let can_admit = has_capacity && !pending.is_empty();
            let admit = match cfg.policy {
                Policy::Fcfs => can_admit && !sealed,
                Policy::PrefillPriority => can_admit,
                Policy::DecodePriority => can_admit && running.is_empty(),
            };
            if admit {
                // audit: allow(panic) — can_admit requires a nonempty pending queue
                let req = pending.pop_front().unwrap();
                if req.max_new == 0 {
                    // A zero generation budget never runs: prefilling it
                    // would wrongly emit a first token (the prompt's last
                    // row always samples). Finish at the admission tick.
                    counters::bump_serve_admissions(1);
                    finished.push(metrics_without_tokens(req, FinishReason::Completed, clock));
                    continue;
                }
                let mut s = memory.start(engine, req);
                note_admission(&mut s, clock, pending.len());
                prefilling = Some(s);
            }
        }
        if let Some(plan) = hooks.fault_plan.as_mut() {
            if plan.crashes_at(steps.len()) {
                // audit: allow(panic) — deliberate fault injection — the crash-consistency tests require a real panic
                panic!("injected crash before step {}", steps.len());
            }
            if plan.draw_step_failure() {
                // The scheduled step is abandoned before executing: charge
                // the fixed overhead and retry (the admitted mid-prefill
                // session, if any, simply waits out the retry).
                counters::bump_serve_step_retries(1);
                resilience.step_retries += 1;
                clock += cfg.step_overhead;
                continue;
            }
        }
        // Forced preemption (tests/experiments), once per step index. The
        // mid-prefill session is never preempted: it is the step's anchor.
        if let Memory::Paged(rt) = memory {
            if let Some(f) = hooks.force_preempt.as_mut() {
                if hook_step != steps.len() && !running.is_empty() {
                    hook_step = steps.len();
                    let ids: Vec<usize> = running.iter().map(|s| s.request.id).collect();
                    for id in f(steps.len(), &ids) {
                        if let Some(i) = running.iter().position(|s| s.request.id == id) {
                            rt.preempt(running.remove(i));
                        }
                    }
                    if running.is_empty() && prefilling.is_none() {
                        sealed = false;
                    }
                }
            }
            maybe_pool_spike(rt, &mut running, &mut hooks.fault_plan, &mut resilience);
            if running.is_empty() && prefilling.is_none() {
                // Everything resident was swapped out: the next iteration
                // restores (always possible on an otherwise-empty pool).
                continue;
            }
            // Make room for every row this step appends: one per running
            // decode, plus the prefill chunk about to land.
            let take = prefilling
                .as_ref()
                .map_or(0, |s| s.prefill_remaining().min(chunk));
            let floor = usize::from(prefilling.is_none());
            let pf = &prefilling;
            rt.make_room(
                &mut running,
                1,
                || pf.as_ref().map_or(0, |s| s.blocks_needed(take)),
                floor,
            );
        }
        // One fused step: all running decode rows + the next prefill chunk.
        let decode_rows = running.len();
        let prefill_pos = prefilling.as_ref().map_or(0, |s| s.prefilled);
        let prefill_rows = {
            let mut refs: Vec<&mut SessionState> = running.iter_mut().collect();
            engine.step(&mut refs, prefilling.as_mut(), chunk)
        };
        debug_assert!(decode_rows + prefill_rows >= 1);
        let cost = cfg.step_overhead + (decode_rows + prefill_rows) as u64;
        clock += cost;
        steps.push(StepRecord {
            prefill_rows,
            prefill_pos,
            decode_rows,
            swapped_rows: memory.take_pending(),
            cost,
        });
        trace_step(
            clock,
            // audit: allow(panic) — a StepRecord was pushed immediately above
            steps.last().expect("just pushed"),
            pending.len(),
            running.len() + usize::from(prefilling.is_some()),
            memory,
            &mut last_swaps,
        );
        peak_kv_rows = peak_kv_rows.max(
            running.iter().map(SessionState::positions).sum::<usize>()
                + prefilling.as_ref().map_or(0, SessionState::positions),
        );
        if decode_rows > 0 && prefill_rows == 0 {
            sealed = true;
        }
        // Every running session emitted one token this step.
        for s in running.iter_mut() {
            s.token_ticks.push(clock);
        }
        // The last chunk sampled the first token: TTFT stops here and the
        // session joins the running set (or finishes outright).
        if prefilling.as_ref().is_some_and(SessionState::is_prefilled) {
            // audit: allow(panic) — guarded by prefilling.as_ref().is_some_and(...) above
            let mut s = prefilling.take().unwrap();
            memory.register(&s);
            s.token_ticks.push(clock);
            match s.finish_reason(max_seq) {
                Some(reason) => finished.push(metrics_of(s, reason, clock)),
                None => running.push(s),
            }
        }
        let mut still_running = Vec::with_capacity(running.len());
        for s in running.drain(..) {
            match s.finish_reason(max_seq) {
                Some(reason) => finished.push(metrics_of(s, reason, clock)),
                None => still_running.push(s),
            }
        }
        running = still_running;
        if running.is_empty() && prefilling.is_none() {
            sealed = false;
        }
        // A due capture waits for the prefill slot to drain: a checkpoint
        // never holds a half-prefilled session.
        if prefilling.is_none() {
            if let Some(hook) = hooks.checkpoint.as_mut() {
                if steps.len() - last_ckpt >= hook.every_steps.max(1) {
                    last_ckpt = steps.len();
                    capture_checkpoint(
                        memory,
                        hook,
                        &arrivals,
                        &pending,
                        &running,
                        &finished,
                        &steps,
                        clock,
                        peak_kv_rows,
                        sealed,
                        &mut resilience,
                    );
                }
            }
        }
    }
    finished.sort_by_key(|m| m.id);
    ServeReport {
        requests: finished,
        steps,
        ticks: clock,
        max_batch: cfg.max_batch,
        peak_kv_rows,
        paging: None,
        resilience,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StepKind;
    use crate::request::{synthetic_trace, TraceParams};
    use figlut_model::{Backend, ModelConfig, Transformer};

    fn setup() -> (Transformer, crate::request::Trace) {
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let trace = synthetic_trace(&m.cfg, &TraceParams::light(5), 17);
        (m, trace)
    }

    #[test]
    fn every_policy_serves_every_request_with_solo_tokens() {
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();
        for policy in Policy::ALL {
            for max_batch in [1usize, 2, 4, 8] {
                for chunk in [None, Some(2), Some(5)] {
                    let mut cfg = ServeConfig::new(max_batch, policy);
                    cfg.prefill_chunk = chunk;
                    let report = serve(&engine, &trace, &cfg);
                    assert_eq!(
                        report.requests.len(),
                        trace.len(),
                        "{policy:?} {max_batch} {chunk:?}"
                    );
                    for r in &report.requests {
                        assert_eq!(
                            r.generated, solo[r.id],
                            "{policy:?} max_batch={max_batch} chunk={chunk:?} request {}",
                            r.id
                        );
                        assert!(r.first_token >= r.arrival && r.finish >= r.first_token);
                        assert_eq!(r.token_ticks.len(), r.tokens);
                        assert_eq!(r.token_ticks.first(), Some(&r.first_token));
                        assert_eq!(r.token_ticks.last(), Some(&r.finish));
                    }
                }
            }
        }
    }

    #[test]
    fn decode_batches_never_exceed_max_batch() {
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        for policy in Policy::ALL {
            for chunk in [None, Some(3)] {
                let mut cfg = ServeConfig::new(2, policy);
                cfg.prefill_chunk = chunk;
                let report = serve(&engine, &trace, &cfg);
                for s in &report.steps {
                    assert!(s.decode_rows <= 2, "{policy:?}: batch {}", s.decode_rows);
                    if let Some(c) = chunk {
                        assert!(s.prefill_rows <= c, "{policy:?}: chunk {}", s.prefill_rows);
                    }
                }
            }
        }
    }

    #[test]
    fn decode_priority_never_batches_beyond_one() {
        // The decode-eager extreme only admits into an empty running set,
        // so its decode batches are always singletons — and under chunking
        // it never even produces a mixed step.
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        let report = serve(
            &engine,
            &trace,
            &ServeConfig::new(8, Policy::DecodePriority),
        );
        assert!(report
            .steps
            .iter()
            .filter(|s| s.kind() == StepKind::Decode)
            .all(|s| s.decode_rows == 1));
        let chunked = serve(
            &engine,
            &trace,
            &ServeConfig::new(8, Policy::DecodePriority).with_prefill_chunk(2),
        );
        assert!(chunked.steps.iter().all(|s| s.kind() != StepKind::Mixed));
    }

    #[test]
    fn fcfs_seals_batches_and_prefill_priority_refills() {
        // Under a tick-0 burst of 4 requests and max_batch 2, FCFS must not
        // admit request 2 until the first pair fully drains, while
        // prefill-priority backfills the slot as soon as one frees.
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let p = TraceParams {
            mean_interarrival: 0.0,
            prompt_len: (3, 3),
            new_tokens: (2, 6),
            ..TraceParams::light(4)
        };
        let trace = synthetic_trace(&m.cfg, &p, 23);
        assert!(trace
            .requests
            .iter()
            .any(|a| trace.requests.iter().any(|b| a.max_new != b.max_new)));
        let engine = BatchEngine::new(&m, Backend::Exact);
        let fcfs = serve(&engine, &trace, &ServeConfig::new(2, Policy::Fcfs));
        // FCFS: once sealed, occupancy can only fall; a refilled batch would
        // show rows going 2 → 1 → 2 within one seal window. Verify the
        // decode-row sequence is "sawtooth-free" per window: after the batch
        // shrinks, it never grows until it hits zero (window resets on
        // prefill).
        let mut prev = 0usize;
        for s in &fcfs.steps {
            match s.kind() {
                StepKind::Prefill => prev = 0,
                StepKind::Decode => {
                    if prev > 0 {
                        assert!(
                            s.decode_rows <= prev,
                            "FCFS batch regrew: {} -> {}",
                            prev,
                            s.decode_rows
                        );
                    }
                    prev = s.decode_rows;
                }
                StepKind::Mixed => unreachable!("monolithic path emitted a mixed step"),
            }
        }
        // Prefill-priority must beat FCFS on mean TTFT under this burst.
        let pp = serve(
            &engine,
            &trace,
            &ServeConfig::new(2, Policy::PrefillPriority),
        );
        assert!(
            pp.mean_ttft() < fcfs.mean_ttft(),
            "prefill-priority TTFT {} !< fcfs {}",
            pp.mean_ttft(),
            fcfs.mean_ttft()
        );
    }

    #[test]
    fn over_budget_requests_finish_at_the_context_limit_not_rejected() {
        // A budget that cannot fit in the context is legal: the session is
        // served until the model's position table runs out, then finished —
        // with the same tokens as its solo run (the positional limit
        // depends only on session state; memory pressure is handled by
        // preemption and never finishes anyone).
        use crate::engine::FinishReason;
        use crate::request::{Request, Sampling, Trace};
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let over = Request {
            id: 0,
            arrival: 0,
            prompt: (0..30).map(|i| i % m.cfg.vocab).collect(),
            max_new: 20, // 30 + 20 > max_seq 40
            sampling: Sampling::Greedy,
            seed: 5,
        };
        let fits = Request {
            id: 1,
            arrival: 0,
            prompt: vec![0, 3, 9],
            max_new: 4,
            sampling: Sampling::Greedy,
            seed: 6,
        };
        let trace = Trace {
            requests: vec![over.clone(), fits.clone()],
        };
        let engine = BatchEngine::new(&m, Backend::Exact);
        for policy in Policy::ALL {
            let report = serve(&engine, &trace, &ServeConfig::new(2, policy));
            let capped = &report.requests[0];
            assert_eq!(capped.reason, FinishReason::ContextExhausted, "{policy:?}");
            // 30 prompt slots + 10 decodes reach max_seq; 11 tokens out.
            assert_eq!(capped.tokens, 11, "{policy:?}");
            assert_eq!(capped.generated, engine.solo_run(&over), "{policy:?}");
            let completed = &report.requests[1];
            assert_eq!(completed.reason, FinishReason::Completed, "{policy:?}");
            assert_eq!(completed.generated, engine.solo_run(&fits), "{policy:?}");
        }
    }

    #[test]
    fn idle_periods_jump_the_clock() {
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let mut trace = synthetic_trace(&m.cfg, &TraceParams::light(2), 31);
        trace.requests[1].arrival = 10_000;
        let engine = BatchEngine::new(&m, Backend::Exact);
        let report = serve(
            &engine,
            &trace,
            &ServeConfig::new(4, Policy::PrefillPriority),
        );
        assert!(report.ticks >= 10_000, "clock must reach the late arrival");
        // No steps were burned spinning through the idle gap.
        let work: u64 = report.steps.iter().map(|s| s.cost).sum();
        assert!(
            work < 1_000,
            "idle gap was busy-waited: {work} ticks of work"
        );
        assert_eq!(
            report.requests[1].ttft(),
            report.requests[1].first_token - 10_000
        );
    }

    #[test]
    fn ticks_equal_total_step_cost_plus_idle() {
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        let report = serve(&engine, &trace, &ServeConfig::new(3, Policy::Fcfs));
        let work: u64 = report.steps.iter().map(|s| s.cost).sum();
        assert!(report.ticks >= work);
        let tokens: usize = report.requests.iter().map(|r| r.tokens).sum();
        assert_eq!(tokens, report.total_tokens());
    }

    /// The `prefill_chunk: None` path is a **pure refactor**: this golden
    /// trace (packed exec backend, all three policies) was captured from
    /// the pre-chunking scheduler, and the step sequence, per-request
    /// timings, and final clock must stay byte-identical to it.
    #[test]
    fn monolithic_path_matches_pre_chunking_golden_trace() {
        use crate::request::Sampling;
        use figlut_gemm::EngineConfig;
        use figlut_model::calibrate::{quantize_model, to_packed, Method};
        use figlut_model::corpus::generate;

        let teacher = Transformer::teacher(ModelConfig::tiny(), 55);
        let calib = generate(&teacher, 2, 10, 3);
        let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
        let model = to_packed(&q);
        let engine = BatchEngine::new(&model, Backend::Exec(EngineConfig::paper_default()));
        let params = TraceParams {
            requests: 5,
            mean_interarrival: 2.0,
            prompt_len: (2, 8),
            new_tokens: (2, 9),
            sampling: Sampling::Greedy,
        };
        let trace = synthetic_trace(&model.cfg, &params, 77);

        // (kind, rows, cost) per step; (arrival, first, finish, tokens) per
        // request — captured from the pre-chunking scheduler.
        type Golden = (
            u64,
            &'static [(&'static str, usize, u64)],
            &'static [(u64, u64, u64, usize)],
        );
        let golden: [(Policy, Golden); 3] = [
            (
                Policy::Fcfs,
                (
                    66,
                    &[
                        ("P", 5, 6),
                        ("P", 4, 5),
                        ("P", 4, 5),
                        ("D", 3, 4),
                        ("D", 3, 4),
                        ("D", 3, 4),
                        ("D", 3, 4),
                        ("D", 3, 4),
                        ("D", 2, 3),
                        ("D", 2, 3),
                        ("D", 1, 2),
                        ("P", 3, 4),
                        ("P", 3, 4),
                        ("D", 2, 3),
                        ("D", 2, 3),
                        ("D", 2, 3),
                        ("D", 2, 3),
                        ("D", 1, 2),
                    ],
                    &[
                        (0, 6, 44, 9),
                        (2, 11, 42, 8),
                        (5, 16, 36, 6),
                        (8, 48, 64, 5),
                        (9, 52, 66, 6),
                    ],
                ),
            ),
            (
                Policy::PrefillPriority,
                (
                    65,
                    &[
                        ("P", 5, 6),
                        ("P", 4, 5),
                        ("P", 4, 5),
                        ("D", 3, 4),
                        ("D", 3, 4),
                        ("D", 3, 4),
                        ("D", 3, 4),
                        ("D", 3, 4),
                        ("P", 3, 4),
                        ("D", 3, 4),
                        ("D", 3, 4),
                        ("P", 3, 4),
                        ("D", 3, 4),
                        ("D", 2, 3),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                    ],
                    &[
                        (0, 6, 56, 9),
                        (2, 11, 48, 8),
                        (5, 16, 36, 6),
                        (8, 40, 59, 5),
                        (9, 52, 65, 6),
                    ],
                ),
            ),
            (
                Policy::DecodePriority,
                (
                    82,
                    &[
                        ("P", 5, 6),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("P", 4, 5),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("P", 4, 5),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("P", 3, 4),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("P", 3, 4),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                        ("D", 1, 2),
                    ],
                    &[
                        (0, 6, 22, 9),
                        (2, 27, 41, 8),
                        (5, 46, 56, 6),
                        (8, 60, 68, 5),
                        (9, 72, 82, 6),
                    ],
                ),
            ),
        ];
        for (policy, (ticks, steps, requests)) in golden {
            let r = serve(&engine, &trace, &ServeConfig::new(3, policy));
            assert_eq!(r.ticks, ticks, "{policy:?}");
            assert_eq!(r.steps.len(), steps.len(), "{policy:?}");
            for (got, &(kind, rows, cost)) in r.steps.iter().zip(steps) {
                let want_kind = if kind == "P" {
                    StepKind::Prefill
                } else {
                    StepKind::Decode
                };
                assert_eq!(got.kind(), want_kind, "{policy:?}");
                assert_eq!(got.rows(), rows, "{policy:?}");
                assert_eq!(got.cost, cost, "{policy:?}");
                assert_eq!(got.swapped_rows, 0, "{policy:?}: unbidden swap");
            }
            for (got, &(arrival, first, finish, tokens)) in r.requests.iter().zip(requests) {
                assert_eq!(
                    (got.arrival, got.first_token, got.finish, got.tokens),
                    (arrival, first, finish, tokens),
                    "{policy:?} request {}",
                    got.id
                );
            }
            // Paging with an unbounded pool must be invisible to the
            // golden schedule: same steps, same timings, same clock — only
            // the storage layout (and the paging report) differs.
            let paged = serve(
                &engine,
                &trace,
                &ServeConfig::new(3, policy).with_block_size(64),
            );
            assert_eq!(paged.ticks, r.ticks, "{policy:?} paged");
            assert_eq!(paged.steps, r.steps, "{policy:?} paged");
            assert_eq!(paged.requests, r.requests, "{policy:?} paged");
            let stats = paged.paging.expect("paging stats when paging is on");
            assert_eq!(stats.swaps_out, 0, "{policy:?}: unbidden preemption");
            assert_eq!(stats.final_live_blocks, 0, "{policy:?}: leaked blocks");
        }
    }

    /// Natural (memory-pressure) preemption: a pool too small for the
    /// whole batch forces swap-outs, yet every token stream stays
    /// bit-identical to its solo run, no block leaks, and every swap-out
    /// is matched by a swap-in.
    #[test]
    fn tight_pool_preempts_and_restores_bit_identically() {
        use crate::request::{Request, Sampling, Trace};
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let engine = BatchEngine::new(&m, Backend::Exact);
        let mk = |id| Request {
            id,
            arrival: 0,
            prompt: (0..12).map(|i| (i + id) % m.cfg.vocab).collect(),
            max_new: 8,
            sampling: Sampling::Greedy,
            seed: 70 + id as u64,
        };
        let trace = Trace {
            requests: vec![mk(0), mk(1), mk(2)],
        };
        let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();
        // ceil(max_seq 40 / bs 4) = 10 blocks is the legal minimum; three
        // sessions of 12+8 rows want 5 blocks each, so 10 cannot hold the
        // full batch and the scheduler must preempt.
        for chunk in [None, Some(3)] {
            let mut cfg = ServeConfig::new(3, Policy::PrefillPriority)
                .with_block_size(4)
                .with_pool_blocks(10);
            cfg.prefill_chunk = chunk;
            let r = serve(&engine, &trace, &cfg);
            for req in &r.requests {
                assert_eq!(
                    req.generated, solo[req.id],
                    "chunk {chunk:?} req {}",
                    req.id
                );
            }
            let stats = r.paging.expect("paging stats");
            assert!(stats.swaps_out > 0, "chunk {chunk:?}: pool never pressured");
            assert_eq!(stats.swaps_out, stats.swaps_in, "chunk {chunk:?}");
            assert!(stats.peak_live_blocks <= 10, "chunk {chunk:?}: cap broken");
            assert_eq!(stats.final_live_blocks, 0, "chunk {chunk:?}: leak");
            assert!(stats.swapped_rows > 0, "chunk {chunk:?}");
            // The swap traffic is priced into steps, and conserved.
            let step_rows: usize = r.steps.iter().map(|s| s.swapped_rows).sum();
            assert_eq!(step_rows, stats.swapped_rows, "chunk {chunk:?}");
        }
    }

    /// Scheduler-chosen preemption via the hook: swap a victim out before
    /// every third step; streams must still be bit-identical to solo.
    #[test]
    fn forced_preemption_roundtrips_are_invisible_in_the_tokens() {
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();
        for chunk in [None, Some(2)] {
            let mut cfg = ServeConfig::new(4, Policy::PrefillPriority).with_block_size(3);
            cfg.prefill_chunk = chunk;
            let hooks = ServeHooks {
                force_preempt: Some(Box::new(|step, ids: &[usize]| {
                    if step % 3 == 0 {
                        ids.first().copied().into_iter().collect()
                    } else {
                        Vec::new()
                    }
                })),
                ..Default::default()
            };
            let r = serve_with_hooks(&engine, &trace, &cfg, hooks);
            assert_eq!(r.requests.len(), trace.len(), "chunk {chunk:?}");
            for req in &r.requests {
                assert_eq!(
                    req.generated, solo[req.id],
                    "chunk {chunk:?} req {}",
                    req.id
                );
            }
            let stats = r.paging.expect("paging stats");
            assert!(stats.swaps_out > 0, "chunk {chunk:?}: hook never fired");
            assert_eq!(stats.swaps_out, stats.swaps_in, "chunk {chunk:?}");
            assert_eq!(stats.final_live_blocks, 0, "chunk {chunk:?}");
        }
    }

    /// Identical prompts admitted back-to-back share their prefix blocks:
    /// the registry hands each later session the earlier session's whole
    /// blocks, copy-on-write keeps divergence private, and the tokens
    /// never notice.
    #[test]
    fn shared_prefixes_are_adopted_and_stay_bit_identical() {
        use crate::request::{Request, Sampling, Trace};
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let engine = BatchEngine::new(&m, Backend::Exact);
        let prompt: Vec<usize> = std::iter::once(0)
            .chain((1..17).map(|i| i % m.cfg.vocab))
            .collect();
        let mk = |id| Request {
            id,
            arrival: 0,
            prompt: prompt.clone(),
            max_new: 4,
            sampling: Sampling::Greedy,
            seed: 80 + id as u64,
        };
        let trace = Trace {
            requests: vec![mk(0), mk(1), mk(2)],
        };
        let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();
        let cfg = ServeConfig::new(3, Policy::PrefillPriority).with_block_size(4);
        let r = serve(&engine, &trace, &cfg);
        for req in &r.requests {
            assert_eq!(req.generated, solo[req.id], "req {}", req.id);
        }
        let stats = r.paging.expect("paging stats");
        // 17-token prompt, bs 4: requests 1 and 2 each adopt the 16-row
        // whole-block prefix registered by request 0.
        assert_eq!(stats.shared_rows, 32);
        assert_eq!(stats.final_live_blocks, 0);
        // Shared storage beats private storage at the peak: three private
        // 17-row tables would already hold 15 blocks.
        assert!(
            stats.peak_live_blocks < 15,
            "no sharing at the peak: {} blocks",
            stats.peak_live_blocks
        );
    }

    /// With paging on but no preemption, the schedule, timings, and every
    /// step record (swap traffic included) must be byte-identical to the
    /// contiguous run — so `workload()` prices both runs identically.
    #[test]
    fn unpressured_paged_runs_price_like_contiguous() {
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        for policy in Policy::ALL {
            for chunk in [None, Some(2)] {
                let mut base = ServeConfig::new(3, policy);
                base.prefill_chunk = chunk;
                let contiguous = serve(&engine, &trace, &base);
                let paged = serve(&engine, &trace, &base.with_block_size(5));
                assert_eq!(paged.steps, contiguous.steps, "{policy:?} {chunk:?}");
                assert_eq!(paged.requests, contiguous.requests, "{policy:?} {chunk:?}");
                assert_eq!(paged.ticks, contiguous.ticks, "{policy:?} {chunk:?}");
                assert_eq!(
                    paged.peak_kv_rows, contiguous.peak_kv_rows,
                    "{policy:?} {chunk:?}"
                );
                let stats = paged.paging.expect("paging stats");
                assert_eq!(stats.swaps_out, 0, "{policy:?} {chunk:?}");
                assert_eq!(stats.swapped_rows, 0, "{policy:?} {chunk:?}");
            }
        }
    }

    /// A long prompt landing on a busy engine: without chunking, every
    /// running session stalls for the whole prompt; with a chunk budget
    /// `c`, no inter-token stall exceeds `step_overhead + c + max_batch`
    /// ticks — and the tokens are bit-identical throughout.
    #[test]
    fn chunked_prefill_bounds_inter_token_stalls() {
        use crate::request::{Request, Sampling, Trace};
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let engine = BatchEngine::new(&m, Backend::Exact);
        let mk = |id, arrival, prompt_len, max_new| Request {
            id,
            arrival,
            prompt: (0..prompt_len).map(|i| i % m.cfg.vocab).collect(),
            max_new,
            sampling: Sampling::Greedy,
            seed: 40 + id as u64,
        };
        // Three decode-heavy sessions, then a 30-token prompt mid-stream.
        let trace = Trace {
            requests: vec![
                mk(0, 0, 3, 12),
                mk(1, 0, 3, 12),
                mk(2, 0, 3, 12),
                mk(3, 10, 30, 3),
            ],
        };
        let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();
        let max_batch = 4usize;
        let base = ServeConfig::new(max_batch, Policy::PrefillPriority);
        let mono = serve(&engine, &trace, &base);
        // The monolithic prefill stalls a running session for ≥ the whole
        // 30-row prompt.
        assert!(
            mono.max_inter_token_stall() >= 30,
            "expected head-of-line blocking, stall {}",
            mono.max_inter_token_stall()
        );
        for chunk in [4usize, 8] {
            let r = serve(&engine, &trace, &base.with_prefill_chunk(chunk));
            let bound = base.step_overhead + (chunk + max_batch) as u64;
            for s in &r.steps {
                assert!(s.cost <= bound, "chunk {chunk}: step cost {}", s.cost);
            }
            assert!(
                r.max_inter_token_stall() <= bound,
                "chunk {chunk}: stall {} > bound {bound}",
                r.max_inter_token_stall()
            );
            // The long prompt really was chunked into mixed steps.
            assert!(r.steps.iter().any(|s| s.kind() == StepKind::Mixed));
            assert!(r.steps.iter().filter(|s| s.prefill_rows > 0).count() > 4);
            // And not one token moved.
            for req in &r.requests {
                assert_eq!(
                    req.generated, solo[req.id],
                    "chunk {chunk} request {}",
                    req.id
                );
            }
            assert!(r.max_inter_token_stall() < mono.max_inter_token_stall());
        }
    }

    #[test]
    fn chunked_fcfs_seals_on_pure_decode_and_reopens() {
        // FCFS under chunking: admissions (possibly mixed with decodes)
        // until a pure-decode step runs, then drain to empty before the
        // next admission.
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let p = TraceParams {
            mean_interarrival: 0.0,
            prompt_len: (4, 4),
            new_tokens: (2, 6),
            ..TraceParams::light(5)
        };
        let trace = synthetic_trace(&m.cfg, &p, 23);
        let engine = BatchEngine::new(&m, Backend::Exact);
        let r = serve(
            &engine,
            &trace,
            &ServeConfig::new(2, Policy::Fcfs).with_prefill_chunk(2),
        );
        // Once a pure-decode step seals the batch, FCFS admits again only
        // after the batch drains — so the first prefill-carrying step after
        // a sealed stretch must be prefill-only (nothing left running).
        let mut sealed = false;
        for s in &r.steps {
            assert!(s.rows() >= 1, "empty step");
            if s.prefill_rows > 0 {
                if sealed {
                    assert_eq!(s.decode_rows, 0, "FCFS admitted into a sealed batch");
                }
                sealed = false;
            } else if s.decode_rows > 0 {
                sealed = true;
            }
        }
        // The fill phase really did mix decodes with the next admission.
        assert!(r.steps.iter().any(|s| s.kind() == StepKind::Mixed));
        // Tokens still solo-identical.
        for req in &r.requests {
            assert_eq!(req.generated, engine.solo_run(&trace.requests[req.id]));
        }
    }
}
