//! Admission, prefill/decode interleaving, and batch assembly on a
//! deterministic virtual clock.
//!
//! The serving loop is an event loop over *steps*. Each step is either one
//! session's whole-prompt prefill or one batched decode of every running
//! session, and advances the virtual clock by a deterministic cost
//! (`step_overhead + token-rows processed`) — a linear stand-in for the
//! row-proportional GEMM time of both the packed host kernels and the
//! modeled accelerator at these memory-bound shapes. Because the clock is
//! virtual, every latency and throughput number is bit-reproducible across
//! hosts and runs; `ServeReport::workload` prices the very same step
//! sequence through `figlut-sim` when real energy numbers are wanted.
//!
//! Scheduling changes *when* sessions advance, never *what* they emit:
//! tokens are batch-invariant (see [`crate::engine`]), so policies are
//! compared on latency/throughput alone with accuracy provably fixed.

use crate::engine::{BatchEngine, SessionState};
use crate::metrics::{RequestMetrics, ServeReport, StepKind, StepRecord};
use crate::request::Trace;
use std::collections::VecDeque;

/// Batch-assembly policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Static FCFS batching: fill the batch in arrival order up to
    /// `max_batch`, then run it to completion before admitting anyone else
    /// (the classic pre-continuous-batching baseline).
    Fcfs,
    /// Continuous batching, admission-eager: whenever a slot is free and a
    /// request is waiting, prefill it *now*; decode otherwise. Best TTFT
    /// and occupancy; running sessions stall during each prefill.
    PrefillPriority,
    /// Continuous batching, decode-eager: never delay a decode step while
    /// any session is running; admit only when the running set drains.
    /// Best per-token cadence for admitted sessions, worst admission under
    /// load.
    DecodePriority,
}

impl Policy {
    /// All policies, in display order.
    pub const ALL: [Policy; 3] = [
        Policy::Fcfs,
        Policy::PrefillPriority,
        Policy::DecodePriority,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs-static",
            Policy::PrefillPriority => "prefill-priority",
            Policy::DecodePriority => "decode-priority",
        }
    }
}

/// Scheduler knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum sessions decoded per step (and held concurrently).
    pub max_batch: usize,
    /// Batch-assembly policy.
    pub policy: Policy,
    /// Fixed virtual-clock cost added to every step, on top of one tick
    /// per token-row processed.
    pub step_overhead: u64,
}

impl ServeConfig {
    /// A configuration with the default per-step overhead of 1 tick.
    pub fn new(max_batch: usize, policy: Policy) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self {
            max_batch,
            policy,
            step_overhead: 1,
        }
    }
}

/// What the loop decided to do next.
enum Action {
    Prefill,
    Decode,
}

/// Serve `trace` to completion and return the full report.
///
/// Requests are admitted in `(arrival, id)` order; the loop runs until
/// every request has finished (completed its budget or been evicted on a
/// full KV cache). The emitted token streams are bit-identical to each
/// request's [`BatchEngine::solo_run`] for **every** policy and
/// `max_batch` — the property suite and `repro ext-serving` assert this
/// before any throughput number is believed.
///
/// # Panics
///
/// Panics if the trace fails [`Trace::validate`] against the served model.
pub fn serve(engine: &BatchEngine<'_>, trace: &Trace, cfg: &ServeConfig) -> ServeReport {
    let model_cfg = engine.model().cfg;
    trace.validate(&model_cfg);
    let max_seq = model_cfg.max_seq;

    let mut arrivals: VecDeque<_> = trace.requests.iter().cloned().collect();
    let mut pending: VecDeque<_> = VecDeque::new();
    let mut running: Vec<SessionState> = Vec::new();
    let mut finished: Vec<RequestMetrics> = Vec::new();
    let mut steps: Vec<StepRecord> = Vec::new();
    let mut clock = 0u64;
    // FCFS only: set once the current batch starts decoding; admission
    // reopens when the batch drains.
    let mut sealed = false;

    loop {
        while arrivals.front().is_some_and(|r| r.arrival <= clock) {
            pending.push_back(arrivals.pop_front().unwrap());
        }
        if pending.is_empty() && running.is_empty() {
            match arrivals.front() {
                // Idle: jump the clock to the next arrival.
                Some(r) => {
                    clock = r.arrival;
                    continue;
                }
                None => break,
            }
        }
        let has_capacity = running.len() < cfg.max_batch;
        let can_admit = has_capacity && !pending.is_empty();
        let action = match cfg.policy {
            Policy::Fcfs => {
                if can_admit && !sealed {
                    Action::Prefill
                } else {
                    Action::Decode
                }
            }
            Policy::PrefillPriority => {
                if can_admit {
                    Action::Prefill
                } else {
                    Action::Decode
                }
            }
            Policy::DecodePriority => {
                if running.is_empty() {
                    Action::Prefill
                } else {
                    Action::Decode
                }
            }
        };
        match action {
            Action::Prefill => {
                let req = pending
                    .pop_front()
                    .expect("admission without a pending request");
                let arrival = req.arrival;
                let mut s = engine.start(req);
                let rows = engine.prefill(&mut s);
                clock += cfg.step_overhead + rows as u64;
                steps.push(StepRecord {
                    kind: StepKind::Prefill,
                    rows,
                    cost: cfg.step_overhead + rows as u64,
                });
                // The prefill itself emits the first token: TTFT stops here.
                let first_token = clock;
                match s.finish_reason(max_seq) {
                    Some(reason) => finished.push(RequestMetrics {
                        id: s.request.id,
                        arrival,
                        first_token,
                        finish: clock,
                        tokens: s.generated.len(),
                        reason,
                        generated: s.generated,
                    }),
                    None => {
                        s.first_token_tick = Some(first_token);
                        running.push(s);
                    }
                }
            }
            Action::Decode => {
                let batch = running.len();
                debug_assert!(batch >= 1 && batch <= cfg.max_batch);
                {
                    let mut refs: Vec<&mut SessionState> = running.iter_mut().collect();
                    engine.decode(&mut refs);
                }
                clock += cfg.step_overhead + batch as u64;
                steps.push(StepRecord {
                    kind: StepKind::Decode,
                    rows: batch,
                    cost: cfg.step_overhead + batch as u64,
                });
                sealed = true;
                let mut still_running = Vec::with_capacity(running.len());
                for s in running.drain(..) {
                    match s.finish_reason(max_seq) {
                        Some(reason) => finished.push(RequestMetrics {
                            id: s.request.id,
                            arrival: s.request.arrival,
                            first_token: s.first_token_tick.expect("running session without TTFT"),
                            finish: clock,
                            tokens: s.generated.len(),
                            reason,
                            generated: s.generated,
                        }),
                        None => still_running.push(s),
                    }
                }
                running = still_running;
                if running.is_empty() {
                    sealed = false;
                }
            }
        }
    }
    finished.sort_by_key(|m| m.id);
    ServeReport {
        requests: finished,
        steps,
        ticks: clock,
        max_batch: cfg.max_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StepKind;
    use crate::request::{synthetic_trace, TraceParams};
    use figlut_model::{Backend, ModelConfig, Transformer};

    fn setup() -> (Transformer, crate::request::Trace) {
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let trace = synthetic_trace(&m.cfg, &TraceParams::light(5), 17);
        (m, trace)
    }

    #[test]
    fn every_policy_serves_every_request_with_solo_tokens() {
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();
        for policy in Policy::ALL {
            for max_batch in [1usize, 2, 4, 8] {
                let report = serve(&engine, &trace, &ServeConfig::new(max_batch, policy));
                assert_eq!(report.requests.len(), trace.len(), "{policy:?} {max_batch}");
                for r in &report.requests {
                    assert_eq!(
                        r.generated, solo[r.id],
                        "{policy:?} max_batch={max_batch} request {}",
                        r.id
                    );
                    assert!(r.first_token >= r.arrival && r.finish >= r.first_token);
                }
            }
        }
    }

    #[test]
    fn decode_batches_never_exceed_max_batch() {
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        for policy in Policy::ALL {
            let report = serve(&engine, &trace, &ServeConfig::new(2, policy));
            for s in &report.steps {
                if s.kind == StepKind::Decode {
                    assert!(s.rows >= 1 && s.rows <= 2, "{policy:?}: batch {}", s.rows);
                }
            }
        }
    }

    #[test]
    fn decode_priority_never_batches_beyond_one() {
        // The decode-eager extreme only admits into an empty running set,
        // so its decode batches are always singletons.
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        let report = serve(
            &engine,
            &trace,
            &ServeConfig::new(8, Policy::DecodePriority),
        );
        assert!(report
            .steps
            .iter()
            .filter(|s| s.kind == StepKind::Decode)
            .all(|s| s.rows == 1));
    }

    #[test]
    fn fcfs_seals_batches_and_prefill_priority_refills() {
        // Under a tick-0 burst of 4 requests and max_batch 2, FCFS must not
        // admit request 2 until the first pair fully drains, while
        // prefill-priority backfills the slot as soon as one frees.
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let p = TraceParams {
            mean_interarrival: 0.0,
            prompt_len: (3, 3),
            new_tokens: (2, 6),
            ..TraceParams::light(4)
        };
        let trace = synthetic_trace(&m.cfg, &p, 23);
        assert!(trace
            .requests
            .iter()
            .any(|a| trace.requests.iter().any(|b| a.max_new != b.max_new)));
        let engine = BatchEngine::new(&m, Backend::Exact);
        let fcfs = serve(&engine, &trace, &ServeConfig::new(2, Policy::Fcfs));
        // FCFS: once sealed, occupancy can only fall; a refilled batch would
        // show rows going 2 → 1 → 2 within one seal window. Verify the
        // decode-row sequence is "sawtooth-free" per window: after the batch
        // shrinks, it never grows until it hits zero (window resets on
        // prefill).
        let mut prev = 0usize;
        for s in &fcfs.steps {
            match s.kind {
                StepKind::Prefill => prev = 0,
                StepKind::Decode => {
                    if prev > 0 {
                        assert!(s.rows <= prev, "FCFS batch regrew: {} -> {}", prev, s.rows);
                    }
                    prev = s.rows;
                }
            }
        }
        // Prefill-priority must beat FCFS on mean TTFT under this burst.
        let pp = serve(
            &engine,
            &trace,
            &ServeConfig::new(2, Policy::PrefillPriority),
        );
        assert!(
            pp.mean_ttft() < fcfs.mean_ttft(),
            "prefill-priority TTFT {} !< fcfs {}",
            pp.mean_ttft(),
            fcfs.mean_ttft()
        );
    }

    #[test]
    fn over_budget_requests_are_evicted_not_rejected() {
        // A budget that cannot fit in the context is legal: the session is
        // served until its KV cache fills, then evicted — with the same
        // tokens as its solo run (eviction depends only on session state).
        use crate::engine::FinishReason;
        use crate::request::{Request, Sampling, Trace};
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let over = Request {
            id: 0,
            arrival: 0,
            prompt: (0..30).map(|i| i % m.cfg.vocab).collect(),
            max_new: 20, // 30 + 20 > max_seq 40
            sampling: Sampling::Greedy,
            seed: 5,
        };
        let fits = Request {
            id: 1,
            arrival: 0,
            prompt: vec![0, 3, 9],
            max_new: 4,
            sampling: Sampling::Greedy,
            seed: 6,
        };
        let trace = Trace {
            requests: vec![over.clone(), fits.clone()],
        };
        let engine = BatchEngine::new(&m, Backend::Exact);
        for policy in Policy::ALL {
            let report = serve(&engine, &trace, &ServeConfig::new(2, policy));
            let evicted = &report.requests[0];
            assert_eq!(evicted.reason, FinishReason::CacheFull, "{policy:?}");
            // 30 prompt slots + 10 decodes fill the cache; 11 tokens out.
            assert_eq!(evicted.tokens, 11, "{policy:?}");
            assert_eq!(evicted.generated, engine.solo_run(&over), "{policy:?}");
            let completed = &report.requests[1];
            assert_eq!(completed.reason, FinishReason::Completed, "{policy:?}");
            assert_eq!(completed.generated, engine.solo_run(&fits), "{policy:?}");
        }
    }

    #[test]
    fn idle_periods_jump_the_clock() {
        let m = Transformer::teacher(ModelConfig::tiny(), 91);
        let mut trace = synthetic_trace(&m.cfg, &TraceParams::light(2), 31);
        trace.requests[1].arrival = 10_000;
        let engine = BatchEngine::new(&m, Backend::Exact);
        let report = serve(
            &engine,
            &trace,
            &ServeConfig::new(4, Policy::PrefillPriority),
        );
        assert!(report.ticks >= 10_000, "clock must reach the late arrival");
        // No steps were burned spinning through the idle gap.
        let work: u64 = report.steps.iter().map(|s| s.cost).sum();
        assert!(
            work < 1_000,
            "idle gap was busy-waited: {work} ticks of work"
        );
        assert_eq!(
            report.requests[1].ttft(),
            report.requests[1].first_token - 10_000
        );
    }

    #[test]
    fn ticks_equal_total_step_cost_plus_idle() {
        let (m, trace) = setup();
        let engine = BatchEngine::new(&m, Backend::Exact);
        let report = serve(&engine, &trace, &ServeConfig::new(3, Policy::Fcfs));
        let work: u64 = report.steps.iter().map(|s| s.cost).sum();
        assert!(report.ticks >= work);
        let tokens: usize = report.requests.iter().map(|r| r.tokens).sum();
        assert_eq!(tokens, report.total_tokens());
    }
}
