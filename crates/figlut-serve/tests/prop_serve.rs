//! The serving layer's batch-invariance property: for **arbitrary** traces,
//! policies, batch limits, chunked-prefill budgets, and paged-KV layouts,
//! every session's emitted token stream is bit-identical to its solo
//! batch-1 run — scheduling decides *when* tokens appear, never *which*
//! tokens. The quantified space includes mixed prefill+decode steps (any
//! `prefill_chunk` from 1 row up, plus the monolithic `None` path), paged
//! KV over `block_size ∈ {1, 2, 7, 16, 64}` with unbounded and tight block
//! pools (memory-pressure preemption), and scheduler-injected forced
//! preemption points (`ServeHooks::force_preempt`) — with block-refcount
//! conservation and swap-traffic pricing checked on every run.
//!
//! Runs on the packed `Backend::Exec` path (the backend `ext-serving`
//! measures); a slimmer companion property covers the FIGLUT-I datapath
//! model. Thread-count invariance of the same pipeline is pinned by
//! `tests/determinism.rs` (it must mutate the process environment).

use figlut_gemm::{Engine, EngineConfig};
use figlut_model::calibrate::{quantize_model, to_packed, Method};
use figlut_model::corpus::generate;
use figlut_model::{Backend, ModelConfig, Transformer};
use figlut_serve::{
    serve, serve_with_hooks, synthetic_trace, BatchEngine, Policy, Sampling, ServeConfig,
    ServeHooks, StepKind, TraceParams,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn packed_model() -> &'static Transformer {
    static MODEL: OnceLock<Transformer> = OnceLock::new();
    MODEL.get_or_init(|| {
        let teacher = Transformer::teacher(ModelConfig::tiny(), 55);
        let calib = generate(&teacher, 2, 10, 3);
        let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
        to_packed(&q)
    })
}

#[derive(Clone, Debug)]
struct Scenario {
    seed: u64,
    requests: usize,
    mean_interarrival: f64,
    max_batch: usize,
    policy: Policy,
    sampling: Sampling,
    prefill_chunk: Option<usize>,
    block_size: Option<usize>,
    /// 0 = unbounded pool, 1 = the legal minimum (one full-context
    /// session), 2 = minimum + 2 — both caps force memory-pressure
    /// preemption under load. Ignored when `block_size` is `None`.
    pool_mode: usize,
    /// When set (and paging is on), drives a seeded forced-preemption
    /// schedule through `ServeHooks::force_preempt`.
    preempt_seed: Option<u64>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            any::<u64>(),
            1usize..=5,  // requests
            0usize..=30, // mean inter-arrival (0 = burst)
            1usize..=4,  // max_batch
            0usize..3,   // policy index
            0usize..3,   // sampling choice
            0usize..5,   // chunked-prefill budget choice
        ),
        (
            0usize..6,    // paged-KV block size choice
            0usize..3,    // pool tightness
            any::<u64>(), // forced-preemption seed (odd = on, even = off)
        ),
    )
        .prop_map(
            |((seed, requests, gap, max_batch, pix, six, cix), (bix, pool_mode, praw))| {
                let preempt_seed = (praw % 2 == 1).then_some(praw >> 1);
                Scenario {
                    seed,
                    requests,
                    mean_interarrival: gap as f64,
                    max_batch,
                    policy: Policy::ALL[pix],
                    sampling: [
                        Sampling::Greedy,
                        Sampling::Temperature(1.0),
                        Sampling::Temperature(0.7),
                    ][six],
                    prefill_chunk: [None, Some(1), Some(2), Some(3), Some(8)][cix],
                    block_size: [None, Some(1), Some(2), Some(7), Some(16), Some(64)][bix],
                    pool_mode,
                    preempt_seed,
                }
            },
        )
}

fn run_scenario(model: &Transformer, backend: Backend, sc: &Scenario) {
    let params = TraceParams {
        requests: sc.requests,
        mean_interarrival: sc.mean_interarrival,
        prompt_len: (1, 6),
        new_tokens: (1, 7),
        sampling: sc.sampling,
    };
    let trace = synthetic_trace(&model.cfg, &params, sc.seed);
    let engine = BatchEngine::new(model, backend);
    let mut cfg = ServeConfig::new(sc.max_batch, sc.policy);
    cfg.prefill_chunk = sc.prefill_chunk;
    if let Some(bs) = sc.block_size {
        cfg = cfg.with_block_size(bs);
        let min_cap = model.cfg.max_seq.div_ceil(bs);
        cfg.pool_blocks = match sc.pool_mode {
            0 => None,
            1 => Some(min_cap),
            _ => Some(min_cap + 2),
        };
    }
    let hooks = ServeHooks {
        force_preempt: match (sc.block_size, sc.preempt_seed) {
            (Some(_), Some(ps)) => Some(Box::new(move |step, ids: &[usize]| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        (ps ^ (step as u64).wrapping_mul(31) ^ (id as u64).wrapping_mul(7))
                            .is_multiple_of(3)
                    })
                    .collect()
            })),
            _ => None,
        },
        ..Default::default()
    };
    let report = serve_with_hooks(&engine, &trace, &cfg, hooks);

    // Everyone was served, exactly once.
    assert_eq!(report.requests.len(), trace.len(), "{sc:?}");
    for (r, req) in report.requests.iter().zip(&trace.requests) {
        assert_eq!(r.id, req.id);
        // The signature property: tokens identical to the solo batch-1 run,
        // whatever step mixes the scheduler assembled.
        let solo = engine.solo_run(req);
        assert_eq!(r.generated, solo, "{sc:?} request {}", r.id);
        assert_eq!(r.tokens, r.generated.len());
        assert!(r.tokens <= req.max_new);
        assert!(
            r.first_token >= req.arrival && r.finish >= r.first_token,
            "{sc:?}"
        );
        // Emission ticks line up with the tokens and never decrease.
        assert_eq!(r.token_ticks.len(), r.tokens, "{sc:?}");
        assert!(r.token_ticks.windows(2).all(|w| w[0] <= w[1]), "{sc:?}");
    }
    // Structural sanity of the step log.
    for s in &report.steps {
        match s.kind() {
            StepKind::Prefill => assert!(s.prefill_rows >= 1),
            StepKind::Decode => {
                assert!(
                    s.decode_rows >= 1 && s.decode_rows <= sc.max_batch,
                    "{sc:?}"
                )
            }
            StepKind::Mixed => {
                // Mixed steps exist only on the chunked path, within budget
                // and batch bounds (the prefilling session holds a slot).
                let chunk = sc.prefill_chunk.expect("mixed step without chunking");
                assert!(s.prefill_rows >= 1 && s.prefill_rows <= chunk, "{sc:?}");
                assert!(s.decode_rows >= 1 && s.decode_rows < sc.max_batch, "{sc:?}");
            }
        }
        if let Some(chunk) = sc.prefill_chunk {
            assert!(s.prefill_rows <= chunk, "{sc:?}");
        }
        assert!(s.cost > s.rows() as u64 - 1);
    }
    let work: u64 = report.steps.iter().map(|s| s.cost).sum();
    assert!(report.ticks >= work, "{sc:?}");
    // Paging bookkeeping: refcount conservation (every block returned),
    // swap symmetry (everything preempted was restored), priced traffic
    // (every swapped row shows up in exactly one step record), and the
    // pool cap honored at the peak.
    let step_swap_rows: usize = report.steps.iter().map(|s| s.swapped_rows).sum();
    match (&report.paging, sc.block_size) {
        (Some(stats), Some(bs)) => {
            assert_eq!(stats.block_size, bs, "{sc:?}");
            assert_eq!(stats.final_live_blocks, 0, "{sc:?}: leaked KV blocks");
            assert_eq!(stats.swaps_out, stats.swaps_in, "{sc:?}");
            assert_eq!(step_swap_rows, stats.swapped_rows, "{sc:?}");
            if let Some(cap) = stats.pool_blocks {
                assert!(
                    stats.peak_live_blocks <= cap,
                    "{sc:?}: peak {} over cap {cap}",
                    stats.peak_live_blocks
                );
            }
        }
        (None, None) => {
            assert_eq!(step_swap_rows, 0, "{sc:?}: swap traffic without paging");
        }
        (paging, _) => panic!("{sc:?}: paging report mismatch: {paging:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batch-invariance on the packed exec backend, over arbitrary traces,
    /// policies, batch limits, and sampling rules.
    #[test]
    fn tokens_invariant_under_scheduling_exec(sc in scenario()) {
        run_scenario(
            packed_model(),
            Backend::Exec(EngineConfig::paper_default()),
            &sc,
        );
    }
}

proptest! {
    // The datapath model is slow; a few cases suffice for the second
    // backend (the per-row argument is backend-generic).
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The same invariance through the bit-accurate FIGLUT-I datapath
    /// model (which `Backend::Exec` reproduces bit-exactly).
    #[test]
    fn tokens_invariant_under_scheduling_figlut_i(sc in scenario()) {
        let slim = Scenario { requests: sc.requests.min(3), ..sc.clone() };
        run_scenario(
            packed_model(),
            Backend::Engine(Engine::FiglutI, EngineConfig::paper_default()),
            &slim,
        );
    }
}

/// Reports themselves are deterministic: the same scenario twice gives the
/// same report (tokens, ticks, steps — everything).
#[test]
fn serving_reports_are_reproducible() {
    let model = packed_model();
    let engine = BatchEngine::new(model, Backend::Exec(EngineConfig::paper_default()));
    let trace = synthetic_trace(&model.cfg, &TraceParams::light(5), 99);
    let cfg = ServeConfig::new(3, Policy::PrefillPriority);
    let a = serve(&engine, &trace, &cfg);
    let b = serve(&engine, &trace, &cfg);
    assert_eq!(a, b);
}
