//! Reconciles the serving-layer trace against the report the scheduler
//! already commits to, and proves tracing is a pure observer:
//!
//! * **Golden identity** — serving the same trace with a session installed
//!   returns a `ServeReport` equal (full struct, tokens and step log
//!   included) to the untraced run.
//! * **Span reconciliation** — one span per `StepRecord`, in order, with
//!   matching kind names, durations summing to the step costs, and
//!   globally monotone timestamps (across multiple runs in one session).
//! * **Counter reconciliation** — admissions = requests, steps = step
//!   records, forward calls = steps, model rows = `Σ StepRecord::rows()`,
//!   preempt/restore counts and swap rows = `PagingStats`.
//!
//! Quantified over backends (datapath-exact and packed exec), block sizes,
//! pool pressure, chunked prefill, and a forced-preemption schedule.

use figlut_gemm::EngineConfig;
use figlut_model::calibrate::{quantize_model, to_packed, Method};
use figlut_model::corpus::generate;
use figlut_model::{Backend, ModelConfig, Transformer};
use figlut_serve::{
    serve_with_hooks, synthetic_trace, BatchEngine, Policy, Sampling, ServeConfig, ServeHooks,
    ServeReport, TraceParams,
};
use figlut_trace::{install, snapshot, CollectSink, Counters, OwnedEvent};
use std::sync::OnceLock;

fn packed_model() -> &'static Transformer {
    static MODEL: OnceLock<Transformer> = OnceLock::new();
    MODEL.get_or_init(|| {
        let teacher = Transformer::teacher(ModelConfig::tiny(), 55);
        let calib = generate(&teacher, 2, 10, 3);
        let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
        to_packed(&q)
    })
}

struct Scenario {
    name: &'static str,
    backend: Backend,
    cfg: ServeConfig,
    force_preempt: bool,
}

fn scenarios() -> Vec<Scenario> {
    let model = packed_model();
    let min_cap = |bs: usize| model.cfg.max_seq.div_ceil(bs);
    vec![
        Scenario {
            name: "contiguous-exact",
            backend: Backend::Exact,
            cfg: ServeConfig::new(3, Policy::PrefillPriority),
            force_preempt: false,
        },
        Scenario {
            name: "contiguous-exec-fcfs",
            backend: Backend::Exec(EngineConfig::paper_default()),
            cfg: ServeConfig::new(2, Policy::Fcfs),
            force_preempt: false,
        },
        Scenario {
            name: "paged-unbounded",
            backend: Backend::Exec(EngineConfig::paper_default()),
            cfg: ServeConfig::new(3, Policy::PrefillPriority).with_block_size(2),
            force_preempt: false,
        },
        Scenario {
            name: "paged-tight-forced-preempt",
            backend: Backend::Exec(EngineConfig::paper_default()),
            cfg: ServeConfig::new(3, Policy::PrefillPriority)
                .with_block_size(4)
                .with_pool_blocks(min_cap(4) + 2),
            force_preempt: true,
        },
        Scenario {
            name: "chunked-paged-forced-preempt",
            backend: Backend::Exec(EngineConfig::paper_default()),
            cfg: ServeConfig::new(3, Policy::Fcfs)
                .with_prefill_chunk(2)
                .with_block_size(2)
                .with_pool_blocks(min_cap(2) + 2),
            force_preempt: true,
        },
    ]
}

fn run(sc: &Scenario) -> ServeReport {
    let model = packed_model();
    let params = TraceParams {
        requests: 5,
        mean_interarrival: 6.0,
        prompt_len: (1, 6),
        new_tokens: (2, 7),
        sampling: Sampling::Greedy,
    };
    let trace = synthetic_trace(&model.cfg, &params, 97);
    let engine = BatchEngine::new(model, sc.backend);
    let hooks = ServeHooks {
        force_preempt: sc.force_preempt.then(|| {
            Box::new(move |step: usize, ids: &[usize]| {
                ids.iter()
                    .copied()
                    .filter(|&id| (step as u64 * 31 + id as u64 * 7).is_multiple_of(3))
                    .collect::<Vec<usize>>()
            }) as Box<dyn FnMut(usize, &[usize]) -> Vec<usize>>
        }),
        ..Default::default()
    };
    serve_with_hooks(&engine, &trace, &sc.cfg, hooks)
}

/// Check one scenario's events and counter deltas against its report.
fn reconcile(sc: &Scenario, report: &ServeReport, events: &[OwnedEvent], d: &Counters) {
    let name = sc.name;
    let spans: Vec<&OwnedEvent> = events
        .iter()
        .filter(|e| matches!(e, OwnedEvent::Span { .. }))
        .collect();
    assert_eq!(spans.len(), report.steps.len(), "{name}: one span per step");
    let mut dur_sum = 0;
    for (span, step) in spans.iter().zip(&report.steps) {
        let OwnedEvent::Span { ts, dur, .. } = span else {
            unreachable!()
        };
        assert_eq!(span.name(), step.kind().name(), "{name}: span kind");
        assert_eq!(*dur, step.cost, "{name}: span duration");
        assert_eq!(
            span.arg("prefill_rows"),
            Some(step.prefill_rows as u64),
            "{name}"
        );
        assert_eq!(
            span.arg("decode_rows"),
            Some(step.decode_rows as u64),
            "{name}"
        );
        assert_eq!(
            span.arg("swapped_rows"),
            Some(step.swapped_rows as u64),
            "{name}"
        );
        assert!(ts + dur <= report.ticks, "{name}: span past the clock");
        dur_sum += dur;
    }
    let cost_sum: u64 = report.steps.iter().map(|s| s.cost).sum();
    assert_eq!(dur_sum, cost_sum, "{name}: Σ dur == Σ cost");
    // Timestamps never go backwards, in emission order, any event type.
    assert!(
        events.windows(2).all(|w| w[0].ts() <= w[1].ts()),
        "{name}: non-monotone trace timestamps"
    );
    // Admission instants carry every request id exactly once.
    let mut admitted: Vec<u64> = events
        .iter()
        .filter(|e| matches!(e, OwnedEvent::Instant { .. }) && e.name() == "admit")
        .map(|e| e.arg("id").expect("admit instant without id"))
        .collect();
    admitted.sort_unstable();
    let ids: Vec<u64> = report.requests.iter().map(|r| r.id as u64).collect();
    assert_eq!(admitted, ids, "{name}: admit instants");

    // Counters against the report's own accounting.
    assert_eq!(d.serve_steps, report.steps.len() as u64, "{name}");
    assert_eq!(d.serve_admissions, report.requests.len() as u64, "{name}");
    assert_eq!(
        d.model_forward_calls, d.serve_steps,
        "{name}: one fused forward per step"
    );
    let step_rows: u64 = report.steps.iter().map(|s| s.rows() as u64).sum();
    assert_eq!(
        d.model_prefill_rows + d.model_decode_rows,
        step_rows,
        "{name}: traced model rows == step log rows"
    );
    let step_swap_rows: u64 = report.steps.iter().map(|s| s.swapped_rows as u64).sum();
    assert_eq!(
        d.kv_swap_out_rows + d.kv_swap_in_rows,
        step_swap_rows,
        "{name}: traced swap rows == priced swap rows"
    );
    match &report.paging {
        Some(p) => {
            assert_eq!(d.serve_preemptions, p.swaps_out as u64, "{name}");
            assert_eq!(d.serve_restores, p.swaps_in as u64, "{name}");
            assert_eq!(
                d.kv_swap_out_rows + d.kv_swap_in_rows,
                p.swapped_rows as u64,
                "{name}"
            );
        }
        None => {
            assert_eq!(d.serve_preemptions, 0, "{name}");
            assert_eq!(d.kv_cow_copies, 0, "{name}");
        }
    }
    if matches!(sc.backend, Backend::Exec(_)) {
        assert!(d.exec_calls > 0, "{name}: exec backend traced no calls");
        assert!(d.exec_streamed_words > 0, "{name}");
    }
}

#[test]
fn tracing_is_a_pure_observer_and_reconciles() {
    for sc in scenarios() {
        // Untraced baseline first: the golden identity below compares the
        // full report struct, token streams and step log included.
        let baseline = run(&sc);

        let sink = CollectSink::default();
        let events = sink.events();
        let guard = install(Box::new(sink));
        let before = snapshot();
        let traced = run(&sc);
        let d = snapshot().since(&before);
        guard.finish().unwrap();

        assert_eq!(traced, baseline, "{}: tracing changed the report", sc.name);
        let events = events.lock().unwrap();
        reconcile(&sc, &traced, &events, &d);
    }
}

/// The TTFT decomposition's reconciliation argument, tick-exact: the
/// scheduler runs one prefill anchor at a time and its steps run
/// consecutively from admission, so for every request the spans ending in
/// `(admitted, first_token]` (its prefill-carrying steps) cost exactly
/// `first_token − admitted` ticks and carry exactly `prompt_len` prefill
/// rows. That is precisely `TtftSplit`'s claim: `prefill` is the
/// session's own rows, `sample` is the step overheads plus co-scheduled
/// foreign rows in the same window, `queue` is everything before it.
#[test]
fn ttft_decomposition_reconciles_against_the_step_log() {
    for sc in scenarios() {
        let sink = CollectSink::default();
        let events = sink.events();
        let guard = install(Box::new(sink));
        let report = run(&sc);
        guard.finish().unwrap();
        let events = events.lock().unwrap();
        let name = sc.name;
        // One run in this session, so span timestamps are local ticks.
        for r in &report.requests {
            let split = r.ttft_split();
            assert_eq!(
                split.queue + split.prefill + split.sample,
                r.ttft(),
                "{name}: request {} split does not sum to TTFT",
                r.id
            );
            assert_eq!(split.queue, r.admitted - r.arrival, "{name}: queue share");
            assert_eq!(
                split.prefill, r.prompt_len as u64,
                "{name}: prefill share must be the prompt length"
            );
            let (mut window_cost, mut window_prefill_rows) = (0u64, 0u64);
            for e in events.iter() {
                if let OwnedEvent::Span { ts, dur, .. } = e {
                    let end = ts + dur;
                    if end > r.admitted && end <= r.first_token {
                        window_cost += dur;
                        window_prefill_rows +=
                            e.arg("prefill_rows").expect("span without prefill_rows");
                    }
                }
            }
            assert_eq!(
                window_cost,
                r.first_token - r.admitted,
                "{name}: request {}'s admission→first-token window is not \
                 exactly covered by its prefill-carrying steps",
                r.id
            );
            assert_eq!(
                window_prefill_rows, r.prompt_len as u64,
                "{name}: request {}'s window carries foreign prefill rows",
                r.id
            );
            assert_eq!(
                split.prefill + split.sample,
                window_cost,
                "{name}: request {} compute share != window cost",
                r.id
            );
        }
    }
}

#[test]
fn timestamps_stay_monotone_across_runs_in_one_session() {
    let scs = scenarios();
    let sink = CollectSink::default();
    let events = sink.events();
    let guard = install(Box::new(sink));
    let first = run(&scs[0]);
    let second = run(&scs[1]);
    guard.finish().unwrap();

    let events = events.lock().unwrap();
    assert!(
        events.windows(2).all(|w| w[0].ts() <= w[1].ts()),
        "timestamps regressed across serve runs"
    );
    // Run 1's events all start at or after run 0's closing tick.
    let runs: Vec<u64> = events.iter().map(OwnedEvent::run).collect();
    assert!(runs.contains(&0) && runs.contains(&1), "run tags missing");
    for e in events.iter().filter(|e| e.run() == 1) {
        assert!(e.ts() >= first.ticks, "run 1 event before run 0 ended");
    }
    // And tids (run + 1) give each run its own Chrome-trace lane, so the
    // second run's span count still matches its own step log.
    let run1_spans = events
        .iter()
        .filter(|e| e.run() == 1 && matches!(e, OwnedEvent::Span { .. }))
        .count();
    assert_eq!(run1_spans, second.steps.len());
}
