//! Determinism of the trace-scenario library: every generator is a pure
//! function of `(cfg, params, seed)` — byte-identical output for a fixed
//! seed no matter how many threads generate it, distinct output for
//! distinct seeds, and request contents invariant under the load dial
//! (only arrivals move). These are the preconditions `ext-overload` leans
//! on when it reuses one set of solo reference runs across 1×/3×/10×
//! load, and the companion of the histogram merge-invariance properties
//! in `figlut-trace` (same spirit as the batch-invariance gates).

use figlut_model::ModelConfig;
use figlut_serve::{Scenario, Trace};
use proptest::prelude::*;

const LOADS: [f64; 4] = [0.5, 1.0, 3.0, 10.0];

fn gen(sc: Scenario, requests: usize, load: f64, seed: u64) -> Trace {
    sc.trace(&ModelConfig::tiny(), requests, load, seed)
}

/// The trace's full byte-level identity (Debug covers every field of
/// every request, including prompts, budgets, and sampling seeds).
fn bytes(t: &Trace) -> Vec<u8> {
    format!("{t:?}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fixed seed yields byte-identical traces whether generated on the
    /// main thread or on any number of spawned threads concurrently.
    #[test]
    fn scenario_traces_are_thread_count_invariant(
        seed in any::<u64>(),
        requests in 1usize..=12,
        which in 0usize..4,
        load_idx in 0usize..LOADS.len(),
        threads in 1usize..=4,
    ) {
        let sc = Scenario::ALL[which];
        let load = LOADS[load_idx];
        let reference = bytes(&gen(sc, requests, load, seed));
        let handles: Vec<_> = (0..threads)
            .map(|_| std::thread::spawn(move || bytes(&gen(sc, requests, load, seed))))
            .collect();
        for h in handles {
            let got = h.join().expect("generator thread");
            prop_assert_eq!(&got, &reference, "{} diverged across threads", sc.name());
        }
    }

    /// Distinct seeds yield distinct traces, for every scenario.
    #[test]
    fn distinct_seeds_yield_distinct_traces(
        seed in any::<u64>(),
        requests in 1usize..=12,
        which in 0usize..4,
    ) {
        let sc = Scenario::ALL[which];
        let a = gen(sc, requests, 1.0, seed);
        let b = gen(sc, requests, 1.0, seed ^ 1);
        // Even a 1-request trace differs: the per-request sampling seed
        // mixes the top-level seed directly.
        prop_assert_ne!(a, b, "{} collided across seeds", sc.name());
    }

    /// The load dial rescales arrivals only: ids, prompts, budgets, and
    /// sampling seeds are identical at every load, and every generated
    /// trace validates against the model.
    #[test]
    fn load_dial_preserves_request_contents(
        seed in any::<u64>(),
        requests in 1usize..=12,
        which in 0usize..4,
    ) {
        let sc = Scenario::ALL[which];
        let cfg = ModelConfig::tiny();
        let strip = |t: &Trace| {
            t.requests
                .iter()
                .map(|r| (r.id, r.prompt.clone(), r.max_new, r.seed))
                .collect::<Vec<_>>()
        };
        let reference = gen(sc, requests, 1.0, seed);
        reference.validate(&cfg);
        for load in LOADS {
            let t = gen(sc, requests, load, seed);
            t.validate(&cfg);
            prop_assert_eq!(
                strip(&t),
                strip(&reference),
                "{} request contents moved at load {}",
                sc.name(),
                load
            );
        }
    }
}
