//! Resilience properties of the serving stack: deterministic injected
//! faults (transient step failures, swap-in failures, checksummed restore
//! corruption, pool-exhaustion spikes) recover **exactly** — every served
//! token stream bit-identical to its solo batch-1 run, across fault
//! schedules × admission policies × paged-KV layouts — and a run killed
//! by an injected crash, resumed from its last checkpoint, reconciles
//! byte-identically (tokens, steps, ticks) with the uninterrupted run.
//!
//! Shed requests are the one sanctioned deviation: an admission policy
//! may finish a request with `FinishReason::Shed`, zero tokens, and
//! `admitted == first_token == finish` — an honest rejection, never a
//! corrupted stream.

use figlut_gemm::EngineConfig;
use figlut_model::calibrate::{quantize_model, to_packed, Method};
use figlut_model::corpus::generate;
use figlut_model::{set_kv_checksums, Backend, ModelConfig, Transformer};
use figlut_serve::{
    resume, serve, serve_with_hooks, synthetic_trace, AdmissionPolicy, BatchEngine, Checkpoint,
    CheckpointHook, FaultPlan, FinishReason, Policy, Sampling, ServeConfig, ServeHooks, Slo,
    TraceParams,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

fn packed_model() -> &'static Transformer {
    static MODEL: OnceLock<Transformer> = OnceLock::new();
    MODEL.get_or_init(|| {
        let teacher = Transformer::teacher(ModelConfig::tiny(), 55);
        let calib = generate(&teacher, 2, 10, 3);
        let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
        to_packed(&q)
    })
}

fn packed_engine() -> BatchEngine<'static> {
    BatchEngine::new(packed_model(), Backend::Exec(EngineConfig::paper_default()))
}

#[derive(Clone, Debug)]
struct FaultScenario {
    seed: u64,
    requests: usize,
    mean_interarrival: f64,
    max_batch: usize,
    policy: Policy,
    prefill_chunk: Option<usize>,
    block_size: Option<usize>,
    /// 0 = unbounded pool, 1 = the legal minimum cap (memory pressure).
    pool_mode: usize,
    admission: AdmissionPolicy,
    fault_seed: u64,
    budget: usize,
}

fn fault_scenario() -> impl Strategy<Value = FaultScenario> {
    (
        (
            any::<u64>(),
            1usize..=5,  // requests
            0usize..=20, // mean inter-arrival (0 = burst)
            1usize..=4,  // max_batch
            0usize..3,   // policy index
            0usize..4,   // chunked-prefill budget choice
        ),
        (
            0usize..4,    // paged-KV block size choice
            0usize..2,    // pool tightness
            0usize..4,    // admission policy choice
            any::<u64>(), // fault-plan seed
            0usize..=8,   // fault budget (0 = plan present but quiet)
        ),
    )
        .prop_map(
            |((seed, requests, gap, max_batch, pix, cix), (bix, pool_mode, aix, fseed, budget))| {
                FaultScenario {
                    seed,
                    requests,
                    mean_interarrival: gap as f64,
                    max_batch,
                    policy: Policy::ALL[pix],
                    prefill_chunk: [None, Some(1), Some(3), Some(8)][cix],
                    block_size: [None, Some(1), Some(4), Some(16)][bix],
                    pool_mode,
                    admission: [
                        AdmissionPolicy::Unbounded,
                        AdmissionPolicy::QueueCap { depth: 2 },
                        AdmissionPolicy::TokenBudget { tokens: 16 },
                        AdmissionPolicy::SloShed { ttft: 40 },
                    ][aix],
                    fault_seed: fseed,
                    budget,
                }
            },
        )
}

fn config_of(sc: &FaultScenario) -> ServeConfig {
    let model = packed_model();
    let mut cfg = ServeConfig::new(sc.max_batch, sc.policy).with_admission(sc.admission);
    cfg.prefill_chunk = sc.prefill_chunk;
    if let Some(bs) = sc.block_size {
        cfg = cfg.with_block_size(bs);
        if sc.pool_mode == 1 {
            cfg = cfg.with_pool_blocks(model.cfg.max_seq.div_ceil(bs));
        }
    }
    cfg
}

fn run_faulted(sc: &FaultScenario) {
    // The checksum pass stays on for the whole test binary: restore
    // corruption is only injectable while it can be detected.
    set_kv_checksums(true);
    let model = packed_model();
    let engine = packed_engine();
    let params = TraceParams {
        requests: sc.requests,
        mean_interarrival: sc.mean_interarrival,
        prompt_len: (1, 6),
        new_tokens: (1, 7),
        sampling: Sampling::Greedy,
    };
    let trace = synthetic_trace(&model.cfg, &params, sc.seed);
    let cfg = config_of(sc);
    let plan = FaultPlan::new(sc.fault_seed, sc.budget)
        .with_step_failures(200)
        .with_swap_in_failures(200)
        .with_restore_corruption(200)
        .with_pool_spikes(150);
    let run = |plan: FaultPlan| {
        serve_with_hooks(
            &engine,
            &trace,
            &cfg,
            ServeHooks {
                fault_plan: Some(plan),
                ..Default::default()
            },
        )
    };
    let report = run(plan.clone());

    // Exact recovery: every request finished, and every *served* stream is
    // bit-identical to its solo run — faults moved ticks, never tokens.
    assert_eq!(report.requests.len(), trace.len(), "{sc:?}");
    let mut shed = 0usize;
    for (r, req) in report.requests.iter().zip(&trace.requests) {
        assert_eq!(r.id, req.id);
        if r.reason == FinishReason::Shed {
            shed += 1;
            assert_eq!(r.tokens, 0, "{sc:?}: shed request emitted");
            assert!(r.generated.is_empty() && r.token_ticks.is_empty(), "{sc:?}");
            assert_eq!(r.admitted, r.first_token, "{sc:?}");
            assert_eq!(r.first_token, r.finish, "{sc:?}");
            assert!(r.finish >= r.arrival, "{sc:?}");
        } else {
            assert_eq!(r.generated, engine.solo_run(req), "{sc:?} request {}", r.id);
        }
    }
    let res = &report.resilience;
    assert_eq!(res.shed_requests, shed, "{sc:?}");
    if sc.admission == AdmissionPolicy::Unbounded {
        assert_eq!(shed, 0, "{sc:?}: unbounded admission shed someone");
    }
    // Every injected fault consumed budget; detected corruption is a
    // subset of the swap-in retries it forces.
    assert!(
        res.step_retries + res.swap_in_retries + res.pool_spikes <= sc.budget,
        "{sc:?}: {res:?} over budget"
    );
    assert!(res.checksum_faults <= res.swap_in_retries, "{sc:?}");
    if sc.block_size.is_none() {
        assert_eq!(res.swap_in_retries, 0, "{sc:?}: swap faults without paging");
        assert_eq!(res.pool_spikes, 0, "{sc:?}: pool spikes without paging");
    }
    // Paging bookkeeping holds under faults: no leaks, swap traffic priced
    // into steps, and each detected corruption shows up as exactly one
    // extra swap-in (the re-transfer of the clean host image).
    if let Some(stats) = &report.paging {
        assert_eq!(stats.final_live_blocks, 0, "{sc:?}: leaked KV blocks");
        assert_eq!(
            stats.swaps_in,
            stats.swaps_out + res.checksum_faults,
            "{sc:?}"
        );
        let step_rows: usize = report.steps.iter().map(|s| s.swapped_rows).sum();
        assert_eq!(step_rows, stats.swapped_rows, "{sc:?}");
    }
    // Goodput never counts shed requests, even under an SLO no request
    // could miss.
    let loose = report.goodput(&Slo {
        ttft: u64::MAX,
        stall: u64::MAX,
    });
    assert_eq!(loose.met_requests, trace.len() - shed, "{sc:?}");

    // The fault schedule is deterministic: the identical plan replays the
    // identical run — report, counters, and all.
    let replay = run(plan);
    assert_eq!(replay, report, "{sc:?}: fault injection not deterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact fault recovery across fault schedules × admission policies ×
    /// paged-KV layouts, on the packed exec backend.
    #[test]
    fn faulted_runs_recover_exactly(sc in fault_scenario()) {
        run_faulted(&sc);
    }
}

#[derive(Clone, Debug)]
struct CrashScenario {
    seed: u64,
    requests: usize,
    mean_interarrival: f64,
    max_batch: usize,
    policy: Policy,
    prefill_chunk: Option<usize>,
    /// Paged (unbounded pool) or contiguous — bounded pools are covered by
    /// the fault property; resume reconciliation is asserted on layouts
    /// whose step schedule cannot depend on pool history.
    paged: bool,
    every_steps: usize,
    crash_step: usize,
}

fn crash_scenario() -> impl Strategy<Value = CrashScenario> {
    (
        (
            any::<u64>(),
            2usize..=5,  // requests
            0usize..=10, // mean inter-arrival
            1usize..=4,  // max_batch
            0usize..3,   // policy index
            0usize..3,   // chunked-prefill budget choice
        ),
        (
            any::<bool>(),
            1usize..=4,  // checkpoint cadence
            0usize..=24, // injected crash step
        ),
    )
        .prop_map(
            |((seed, requests, gap, max_batch, pix, cix), (paged, every_steps, crash_step))| {
                CrashScenario {
                    seed,
                    requests,
                    mean_interarrival: gap as f64,
                    max_batch,
                    policy: Policy::ALL[pix],
                    prefill_chunk: [None, Some(2), Some(5)][cix],
                    paged,
                    every_steps,
                    crash_step,
                }
            },
        )
}

fn run_crash(sc: &CrashScenario) {
    let model = packed_model();
    let engine = packed_engine();
    let params = TraceParams {
        requests: sc.requests,
        mean_interarrival: sc.mean_interarrival,
        prompt_len: (1, 6),
        new_tokens: (1, 7),
        sampling: Sampling::Greedy,
    };
    let trace = synthetic_trace(&model.cfg, &params, sc.seed);
    let mut cfg = ServeConfig::new(sc.max_batch, sc.policy);
    cfg.prefill_chunk = sc.prefill_chunk;
    if sc.paged {
        cfg = cfg.with_block_size(8);
    }
    let clean = serve(&engine, &trace, &cfg);

    // Kill the run with an injected panic, checkpointing as it goes.
    let checkpoints: RefCell<Vec<Checkpoint>> = RefCell::new(Vec::new());
    let hooks = ServeHooks {
        fault_plan: Some(FaultPlan::new(0, 0).with_crash_at_step(sc.crash_step)),
        checkpoint: Some(CheckpointHook {
            every_steps: sc.every_steps,
            sink: Box::new(|ck| checkpoints.borrow_mut().push(ck)),
        }),
        ..Default::default()
    };
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        serve_with_hooks(&engine, &trace, &cfg, hooks)
    }));
    let Err(_) = crashed else {
        // The crash step lay beyond the schedule: the run completed, and
        // checkpointing alongside it must not have perturbed a single step.
        let full = crashed.expect("checked Ok");
        assert_eq!(full.requests, clean.requests, "{sc:?}");
        assert_eq!(full.steps, clean.steps, "{sc:?}");
        assert_eq!(full.ticks, clean.ticks, "{sc:?}");
        return;
    };
    let Some(last) = checkpoints.borrow_mut().pop() else {
        // Crashed before the first capture — nothing to resume from.
        return;
    };
    // Captures happen at the loop bottom; the injected crash fires at the
    // next loop top, so the freshest capture holds at most `crash_step`
    // executed steps.
    assert!(
        last.steps.len() <= sc.crash_step,
        "{sc:?}: capture after crash"
    );

    // Resume from the last checkpoint: byte-identical tokens and a
    // reconciled report (requests, steps, ticks, KV peak).
    let resumed = resume(&engine, last, &cfg, ServeHooks::default());
    assert_eq!(resumed.requests, clean.requests, "{sc:?}");
    assert_eq!(resumed.steps, clean.steps, "{sc:?}");
    assert_eq!(resumed.ticks, clean.ticks, "{sc:?}");
    assert_eq!(resumed.peak_kv_rows, clean.peak_kv_rows, "{sc:?}");
    assert!(resumed.resilience.checkpoints >= 1, "{sc:?}");
    for (r, req) in resumed.requests.iter().zip(&trace.requests) {
        assert_eq!(r.generated, engine.solo_run(req), "{sc:?} request {}", r.id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-consistent checkpoint/resume: kill the run at an arbitrary
    /// step, resume from the last checkpoint, and reconcile against the
    /// uninterrupted run — across policies, chunking, paging, cadences,
    /// and crash points.
    #[test]
    fn killed_runs_resume_byte_identically(sc in crash_scenario()) {
        run_crash(&sc);
    }
}

/// A zero generation budget finishes at its admission tick with
/// well-defined metrics — zero tokens, `first_token == finish` — on both
/// scheduler loops and every policy, and never panics `metrics_of`.
#[test]
fn zero_budget_requests_finish_without_tokens_on_both_loops() {
    let model = packed_model();
    let engine = packed_engine();
    let mut trace = synthetic_trace(&model.cfg, &TraceParams::light(4), 17);
    trace.requests[1].max_new = 0;
    for chunk in [None, Some(2)] {
        for policy in Policy::ALL {
            let mut cfg = ServeConfig::new(2, policy);
            cfg.prefill_chunk = chunk;
            let report = serve(&engine, &trace, &cfg);
            assert_eq!(report.requests.len(), trace.len(), "{policy:?} {chunk:?}");
            let z = &report.requests[1];
            assert_eq!(z.reason, FinishReason::Completed, "{policy:?} {chunk:?}");
            assert_eq!(z.tokens, 0, "{policy:?} {chunk:?}");
            assert!(z.generated.is_empty() && z.token_ticks.is_empty());
            assert_eq!(z.admitted, z.first_token, "{policy:?} {chunk:?}");
            assert_eq!(z.first_token, z.finish, "{policy:?} {chunk:?}");
            assert!(z.finish >= z.arrival, "{policy:?} {chunk:?}");
            // Everyone else is untouched by the degenerate neighbor.
            for r in report.requests.iter().filter(|r| r.id != 1) {
                assert_eq!(
                    r.generated,
                    engine.solo_run(&trace.requests[r.id]),
                    "{policy:?} {chunk:?} request {}",
                    r.id
                );
            }
        }
    }
}

/// Admission policies shed honestly under a burst: shed requests carry
/// `FinishReason::Shed` and zero tokens, served requests keep their solo
/// streams, and the default unbounded policy sheds no one.
#[test]
fn admission_policies_shed_honestly_and_keep_served_tokens_solo() {
    let model = packed_model();
    let engine = packed_engine();
    let params = TraceParams {
        requests: 8,
        mean_interarrival: 0.0, // tick-0 burst: the queue is deepest
        prompt_len: (2, 6),
        new_tokens: (2, 7),
        sampling: Sampling::Greedy,
    };
    let trace = synthetic_trace(&model.cfg, &params, 29);
    let base = ServeConfig::new(2, Policy::PrefillPriority);

    let unbounded = serve(&engine, &trace, &base);
    assert_eq!(unbounded.resilience.shed_requests, 0);
    assert!(unbounded
        .requests
        .iter()
        .all(|r| r.reason != FinishReason::Shed));

    for admission in [
        AdmissionPolicy::QueueCap { depth: 2 },
        AdmissionPolicy::TokenBudget { tokens: 14 },
        AdmissionPolicy::SloShed { ttft: 25 },
    ] {
        let report = serve(&engine, &trace, &base.with_admission(admission));
        assert_eq!(report.requests.len(), trace.len(), "{admission:?}");
        let shed: Vec<_> = report
            .requests
            .iter()
            .filter(|r| r.reason == FinishReason::Shed)
            .collect();
        assert!(!shed.is_empty(), "{admission:?}: burst shed no one");
        assert_eq!(report.resilience.shed_requests, shed.len(), "{admission:?}");
        for r in &shed {
            assert_eq!(r.tokens, 0, "{admission:?}");
            assert_eq!(r.admitted, r.finish, "{admission:?}");
        }
        for r in report
            .requests
            .iter()
            .filter(|r| r.reason != FinishReason::Shed)
        {
            assert_eq!(
                r.generated,
                engine.solo_run(&trace.requests[r.id]),
                "{admission:?} request {}",
                r.id
            );
        }
        // Shed requests never count toward goodput, even under an SLO no
        // served request could miss.
        let loose = report.goodput(&Slo {
            ttft: u64::MAX,
            stall: u64::MAX,
        });
        assert_eq!(
            loose.met_requests,
            trace.len() - shed.len(),
            "{admission:?}"
        );
        // Shedding relieved the queue for the survivors.
        assert!(
            report.mean_queue_wait() < unbounded.mean_queue_wait(),
            "{admission:?}: {} !< {}",
            report.mean_queue_wait(),
            unbounded.mean_queue_wait()
        );
    }
}
