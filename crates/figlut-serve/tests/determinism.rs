//! Thread-count invariance of the whole serving pipeline: the
//! `FIGLUT_EXEC_THREADS` override changes how the packed kernels split row
//! panels, and must change nothing about a served trace — not one token,
//! not one tick.
//!
//! Lives in its own integration-test binary (own process) because it
//! mutates the process environment, mirroring `figlut-exec`'s
//! `tests/determinism.rs`.

use figlut_exec::parallel::THREADS_ENV;
use figlut_gemm::EngineConfig;
use figlut_model::calibrate::{quantize_model, to_packed, Method};
use figlut_model::corpus::generate;
use figlut_model::{Backend, ModelConfig, Transformer};
use figlut_serve::{serve, synthetic_trace, BatchEngine, Policy, ServeConfig, TraceParams};

#[test]
fn served_trace_is_invariant_under_thread_override() {
    let teacher = Transformer::teacher(ModelConfig::tiny(), 55);
    let calib = generate(&teacher, 2, 10, 3);
    let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
    let model = to_packed(&q);
    let engine = BatchEngine::new(&model, Backend::Exec(EngineConfig::paper_default()));
    let trace = synthetic_trace(&model.cfg, &TraceParams::light(4), 7);

    let mut reports = Vec::new();
    for threads in ["1", "2", "5"] {
        std::env::set_var(THREADS_ENV, threads);
        for policy in Policy::ALL {
            reports.push(serve(&engine, &trace, &ServeConfig::new(3, policy)));
        }
    }
    std::env::remove_var(THREADS_ENV);

    // Per thread count: 3 reports (one per policy). Across thread counts,
    // each policy's report must be identical in full — tokens, TTFT,
    // ticks, the step log, everything.
    for t in 1..3 {
        for p in 0..3 {
            assert_eq!(
                reports[p],
                reports[3 * t + p],
                "policy {p} diverged at thread set {t}"
            );
        }
    }
}
